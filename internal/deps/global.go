package deps

import (
	"sync"
	"sync/atomic"
)

// GlobalEngine is the single-lock Engine: one mutex serializes every
// submit, release, and cascade across all data objects. It is the
// reference implementation — simplest to reason about, and the baseline
// the contention benchmarks measure the sharded engine against.
type GlobalEngine struct {
	mu       sync.Mutex
	c        depCore
	ep       *enginePools // nil in the reference memory mode
	hookSlot atomic.Pointer[EdgeHook]
}

var _ Engine = (*GlobalEngine)(nil)

// NewGlobalEngine returns a single-lock engine with the reference
// (allocate-always) memory mode. obs may be nil.
func NewGlobalEngine(obs Observer) *GlobalEngine {
	return newGlobalEngine(obs, false)
}

func newGlobalEngine(obs Observer, pooled bool) *GlobalEngine {
	e := &GlobalEngine{}
	e.c.obs = obs
	e.c.hook = &e.hookSlot
	if pooled {
		e.ep = newEnginePools()
		e.c.mem = newDepMem(e.ep, 0)
	}
	return e
}

// SetEdgeHook installs (or, with nil, uninstalls) the edge-export hook;
// see the Engine contract.
func (e *GlobalEngine) SetEdgeHook(fn EdgeHook) {
	if fn == nil {
		e.hookSlot.Store(nil)
		return
	}
	e.hookSlot.Store(&fn)
}

// Stats returns a snapshot of the activity counters.
func (e *GlobalEngine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.c.stats
}

// LiveFragments returns the number of fragments not yet fully released.
func (e *GlobalEngine) LiveFragments() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.c.liveFrags
}

// MemStats returns the engine's memory-pool counters; pooled=false (and
// zero counters) in the reference memory mode.
func (e *GlobalEngine) MemStats() (MemStats, bool) {
	if e.ep == nil {
		return MemStats{}, false
	}
	return e.ep.memStats(), true
}

// NewNode creates a node under parent (nil for the root node).
func (e *GlobalEngine) NewNode(parent *Node, label string, user any) *Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.c.stats.Nodes++
	var n *Node
	if e.ep != nil {
		n = e.ep.newPooledNode(0, parent, label, user)
		if parent != nil {
			parent.pins.Add(1) // released when the child node is recycled
		}
	} else {
		n = newNode(parent, label, user)
	}
	if e.c.obs != nil {
		e.c.obs.NodeCreated(n, parent)
	}
	return n
}

// Register links the node's depend entries into its parent's domain and
// reports whether the node is immediately ready to execute.
func (e *GlobalEngine) Register(n *Node, specs []Spec) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	checkRegister(n, specs)
	for _, spec := range specs {
		e.c.registerSpec(n, spec)
	}
	return finishRegister(n, e.c.obs)
}

// BodyDone implements the weakwait clause (§V). Returns nodes that became
// ready.
func (e *GlobalEngine) BodyDone(n *Node) []*Node {
	return e.BodyDoneInto(n, nil)
}

// BodyDoneInto implements the weakwait clause (§V), appending the nodes
// that became ready to out.
func (e *GlobalEngine) BodyDoneInto(n *Node, out []*Node) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, acc := range n.accesses {
		for _, f := range acc.frags {
			e.c.handOverOrRelease(n, f, f.iv)
		}
	}
	e.c.drainQueue()
	return e.c.appendReady(out)
}

// ReleaseRegions implements the release directive (§V).
func (e *GlobalEngine) ReleaseRegions(n *Node, specs []Spec) []*Node {
	return e.ReleaseRegionsInto(n, specs, nil)
}

// ReleaseRegionsInto implements the release directive (§V), appending the
// nodes that became ready to out.
func (e *GlobalEngine) ReleaseRegionsInto(n *Node, specs []Spec, out []*Node) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, spec := range specs {
		e.c.releaseSpec(n, spec)
	}
	e.c.drainQueue()
	return e.c.appendReady(out)
}

// Complete finalizes the node once its code and all descendants have
// finished. Under the pooled memory mode the node may be recycled before
// Complete returns; see the Engine contract.
func (e *GlobalEngine) Complete(n *Node) []*Node {
	return e.CompleteInto(n, nil)
}

// CompleteInto finalizes the node, appending the nodes that became ready
// to out.
func (e *GlobalEngine) CompleteInto(n *Node, out []*Node) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	n.completed = true
	for _, acc := range n.accesses {
		for _, f := range acc.frags {
			e.c.markDone(f, f.iv)
		}
	}
	e.c.drainQueue()
	out = e.c.appendReady(out)
	if e.ep != nil {
		// Release the completion hold; if the node's fragments and
		// descendants have already drained, this recycles it (and may
		// cascade to drained ancestors).
		e.ep.unpin(n, e.c.mem)
	}
	return out
}
