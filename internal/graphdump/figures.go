package graphdump

import (
	nanos "repro"
	"repro/internal/deps"
)

// This file builds the paper's listing 1 and listing 3 as runnable task
// programs and captures their dependency graphs — the material of Figures 1
// and 2. Variables a,b,z,c,d,e,f are one-element regions of a single data
// object, as in the listings.

// FigureVars maps the captured DataID to the listing's variable names.
type FigureVars = map[deps.DataID]string

const (
	vA = iota
	vB
	vZ
	vC
	vD
	vE
	vF
)

func varIv(v int64) nanos.Interval { return nanos.Iv(v, v+1) }

func varNames(d deps.DataID) FigureVars {
	_ = d
	return FigureVars{0: "a-f"}
}

type figureBuilder struct {
	cap *Capture
	rt  *nanos.Runtime
	d   nanos.DataID
}

func newFigureBuilder() *figureBuilder {
	c := New()
	rt := nanos.New(nanos.Config{Workers: 1, Observer: c})
	d := rt.NewData("vars", 7, 8)
	return &figureBuilder{cap: c, rt: rt, d: d}
}

// inner builds one leaf task of the listings.
func (f *figureBuilder) inner(label string, ins []int64, outs []int64, inouts []int64) nanos.TaskSpec {
	var ds []nanos.Dep
	for _, v := range ins {
		ds = append(ds, nanos.DIn(f.d, varIv(v)))
	}
	for _, v := range outs {
		ds = append(ds, nanos.DOut(f.d, varIv(v)))
	}
	for _, v := range inouts {
		ds = append(ds, nanos.DInOut(f.d, varIv(v)))
	}
	return nanos.TaskSpec{Label: label, Deps: ds, Body: func(*nanos.TaskContext) {}}
}

// Listing1Nested captures the graph of listing 1: two levels, strong outer
// dependencies, taskwait at the end of each outer task (Figure 1a).
func Listing1Nested() (*Capture, FigureVars) {
	f := newFigureBuilder()
	d := f.d
	f.rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{Label: "T1",
			Deps: []nanos.Dep{nanos.DInOut(d, varIv(vA), varIv(vB))},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(f.inner("T1.1", nil, nil, []int64{vA}))
				tc.Submit(f.inner("T1.2", nil, nil, []int64{vB}))
				tc.Taskwait()
			}})
		tc.Submit(nanos.TaskSpec{Label: "T2",
			Deps: []nanos.Dep{nanos.DIn(d, varIv(vA), varIv(vB)), nanos.DOut(d, varIv(vZ), varIv(vC), varIv(vD))},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(f.inner("T2.1", []int64{vA}, []int64{vC}, nil))
				tc.Submit(f.inner("T2.2", []int64{vB}, []int64{vD}, nil))
				tc.Taskwait()
			}})
		tc.Submit(nanos.TaskSpec{Label: "T3",
			Deps: []nanos.Dep{nanos.DIn(d, varIv(vA), varIv(vB), varIv(vD)), nanos.DOut(d, varIv(vE), varIv(vF))},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(f.inner("T3.1", []int64{vA, vD}, []int64{vE}, nil))
				tc.Submit(f.inner("T3.2", []int64{vB}, []int64{vF}, nil))
				tc.Taskwait()
			}})
		tc.Submit(nanos.TaskSpec{Label: "T4",
			Deps: []nanos.Dep{nanos.DIn(d, varIv(vC), varIv(vD), varIv(vE), varIv(vF))},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(f.inner("T4.1", []int64{vC, vE}, nil, nil))
				tc.Submit(f.inner("T4.2", []int64{vD, vF}, nil, nil))
				tc.Taskwait()
			}})
	})
	return f.cap, varNames(d)
}

// Listing1Flat captures the graph after removing the outer level of tasks
// and the taskwaits (Figure 1b).
func Listing1Flat() (*Capture, FigureVars) {
	f := newFigureBuilder()
	f.rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(f.inner("T1.1", nil, nil, []int64{vA}))
		tc.Submit(f.inner("T1.2", nil, nil, []int64{vB}))
		tc.Submit(f.inner("T2.1", []int64{vA}, []int64{vC}, nil))
		tc.Submit(f.inner("T2.2", []int64{vB}, []int64{vD}, nil))
		tc.Submit(f.inner("T3.1", []int64{vA, vD}, []int64{vE}, nil))
		tc.Submit(f.inner("T3.2", []int64{vB}, []int64{vF}, nil))
		tc.Submit(f.inner("T4.1", []int64{vC, vE}, nil, nil))
		tc.Submit(f.inner("T4.2", []int64{vD, vF}, nil, nil))
	})
	return f.cap, varNames(f.d)
}

// Listing3Weak captures the graph of listing 3: weak outer dependencies,
// weakwait, inner tasks inheriting dependencies through the weak accesses
// (Figure 2b; filtering to outer tasks gives Figure 2a, and the runtime's
// execution of it is ordering-equivalent to Listing1Flat — Figure 2c).
func Listing3Weak() (*Capture, FigureVars) {
	f := newFigureBuilder()
	d := f.d
	f.rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{Label: "T1", WeakWait: true,
			Deps: []nanos.Dep{nanos.DInOut(d, varIv(vA), varIv(vB))},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(f.inner("T1.1", nil, nil, []int64{vA}))
				tc.Submit(f.inner("T1.2", nil, nil, []int64{vB}))
			}})
		tc.Submit(nanos.TaskSpec{Label: "T2", WeakWait: true,
			Deps: []nanos.Dep{
				nanos.DOut(d, varIv(vZ)),
				nanos.DWeakIn(d, varIv(vA), varIv(vB)),
				nanos.DWeakOut(d, varIv(vC), varIv(vD)),
			},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(f.inner("T2.1", []int64{vA}, []int64{vC}, nil))
				tc.Submit(f.inner("T2.2", []int64{vB}, []int64{vD}, nil))
			}})
		tc.Submit(nanos.TaskSpec{Label: "T3", WeakWait: true,
			Deps: []nanos.Dep{
				nanos.DWeakIn(d, varIv(vA), varIv(vB), varIv(vD)),
				nanos.DWeakOut(d, varIv(vE), varIv(vF)),
			},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(f.inner("T3.1", []int64{vA, vD}, []int64{vE}, nil))
				tc.Submit(f.inner("T3.2", []int64{vB}, []int64{vF}, nil))
			}})
		tc.Submit(nanos.TaskSpec{Label: "T4", WeakWait: true,
			Deps: []nanos.Dep{nanos.DWeakIn(d, varIv(vC), varIv(vD), varIv(vE), varIv(vF))},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(f.inner("T4.1", []int64{vC, vE}, nil, nil))
				tc.Submit(f.inner("T4.2", []int64{vD, vF}, nil, nil))
			}})
	})
	return f.cap, varNames(d)
}

// OuterOnly filters a capture's edges to those between top-level tasks
// (direct children of main) — the Figure 2a view.
func (c *Capture) OuterOnly() []Edge {
	c.mu.Lock()
	parent := make(map[string]string, len(c.parent))
	for k, v := range c.parent {
		parent[k] = v
	}
	c.mu.Unlock()
	var out []Edge
	for _, e := range c.Edges() {
		if parent[e.Pred] == "main" && parent[e.Succ] == "main" {
			out = append(out, e)
		}
	}
	return out
}
