// Package graphdump captures the dependency graph the engine builds and
// renders it as Graphviz DOT — the reproduction of the paper's Figures 1
// and 2 (the task graphs of listings 1 and 3 at their various stages).
//
// It implements deps.Observer: link events become edges, weakwait
// hand-overs and releases are recorded so the graph can be rendered "at a
// stage" (before instantiation, before the outer tasks exit, after).
package graphdump

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/deps"
	"repro/internal/regions"
)

// Edge is one captured dependency edge.
type Edge struct {
	Pred, Succ string
	Data       deps.DataID
	Iv         regions.Interval
	// Inbound marks parent→child satisfaction links (the weak linking
	// points of §VI); false means a same-domain successor edge.
	Inbound bool
}

// Capture records engine events. It may be registered as the Observer of a
// runtime and interrogated after (or during) the run.
type Capture struct {
	mu       sync.Mutex
	nodes    []string
	parent   map[string]string
	edges    []Edge
	released []Edge // release events, as pseudo-edges (Succ empty)
	handover []Edge
	weak     map[string]bool // nodes that declared any weak access
}

// New creates an empty capture.
func New() *Capture {
	return &Capture{parent: make(map[string]string), weak: make(map[string]bool)}
}

var _ deps.Observer = (*Capture)(nil)

// NodeCreated implements deps.Observer.
func (c *Capture) NodeCreated(n, parent *deps.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes = append(c.nodes, n.Label())
	if parent != nil {
		c.parent[n.Label()] = parent.Label()
	}
}

// NodeReady implements deps.Observer.
func (c *Capture) NodeReady(*deps.Node) {}

// Link implements deps.Observer.
func (c *Capture) Link(pred, succ *deps.Node, data deps.DataID, iv regions.Interval, inbound bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.edges = append(c.edges, Edge{Pred: pred.Label(), Succ: succ.Label(), Data: data, Iv: iv, Inbound: inbound})
}

// Handover implements deps.Observer.
func (c *Capture) Handover(n *deps.Node, data deps.DataID, iv regions.Interval) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handover = append(c.handover, Edge{Pred: n.Label(), Data: data, Iv: iv})
}

// Released implements deps.Observer.
func (c *Capture) Released(n *deps.Node, data deps.DataID, iv regions.Interval) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.released = append(c.released, Edge{Pred: n.Label(), Data: data, Iv: iv})
}

// Edges returns the captured dependency edges, deduplicated by
// (pred, succ, inbound) with interval detail dropped.
func (c *Capture) Edges() []Edge {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]Edge{}
	for _, e := range c.edges {
		key := fmt.Sprintf("%s→%s/%v", e.Pred, e.Succ, e.Inbound)
		if _, ok := seen[key]; !ok {
			seen[key] = e
		}
	}
	out := make([]Edge, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Succ < out[j].Succ
	})
	return out
}

// HasEdge reports whether a (pred → succ) dependency edge was captured.
func (c *Capture) HasEdge(pred, succ string) bool {
	for _, e := range c.Edges() {
		if e.Pred == pred && e.Succ == succ {
			return true
		}
	}
	return false
}

// DOT renders the captured graph as Graphviz: clusters for parent tasks,
// solid edges for same-domain dependencies, dashed edges for inbound (weak
// linking) edges — matching the visual conventions of Figures 1 and 2.
// varNames optionally maps DataID→variable name for edge labels.
func (c *Capture) DOT(title string, varNames map[deps.DataID]string) string {
	c.mu.Lock()
	nodes := append([]string(nil), c.nodes...)
	parent := make(map[string]string, len(c.parent))
	for k, v := range c.parent {
		parent[k] = v
	}
	c.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")

	// Group children under their parent as clusters (nested rectangles in
	// the paper's figures).
	children := map[string][]string{}
	for _, n := range nodes {
		children[parent[n]] = append(children[parent[n]], n)
	}
	var emit func(p string, indent string)
	emit = func(p string, indent string) {
		for _, n := range children[p] {
			if len(children[n]) > 0 {
				fmt.Fprintf(&b, "%ssubgraph \"cluster_%s\" {\n%s  label=%q;\n", indent, n, indent, n)
				fmt.Fprintf(&b, "%s  %q [style=dotted];\n", indent, n)
				emit(n, indent+"  ")
				fmt.Fprintf(&b, "%s}\n", indent)
			} else {
				fmt.Fprintf(&b, "%s%q;\n", indent, n)
			}
		}
	}
	emit("main", "  ")

	for _, e := range c.Edges() {
		label := ""
		if varNames != nil {
			if name, ok := varNames[e.Data]; ok {
				label = name
			}
		}
		style := "solid"
		if e.Inbound {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q, style=%s];\n", e.Pred, e.Succ, label, style)
	}
	b.WriteString("}\n")
	return b.String()
}
