package graphdump

import (
	"strings"
	"testing"
)

// TestFigure1Edges: the nested strong graph must contain exactly the
// outer-task edges the paper draws in Figure 1a.
func TestFigure1Edges(t *testing.T) {
	c, _ := Listing1Nested()
	want := [][2]string{
		{"T1", "T2"}, // a, b
		{"T1", "T3"}, // a, b
		{"T2", "T3"}, // d
		{"T2", "T4"}, // c, d
		{"T3", "T4"}, // e, f
	}
	for _, w := range want {
		if !c.HasEdge(w[0], w[1]) {
			t.Errorf("missing edge %s → %s", w[0], w[1])
		}
	}
	// Readers don't depend on readers: no T3→T2 or reversed edges.
	for _, bad := range [][2]string{{"T2", "T1"}, {"T3", "T2"}, {"T4", "T1"}} {
		if c.HasEdge(bad[0], bad[1]) {
			t.Errorf("unexpected edge %s → %s", bad[0], bad[1])
		}
	}
}

// TestFigure1FlatEdges: the flat graph of Figure 1b.
func TestFigure1FlatEdges(t *testing.T) {
	c, _ := Listing1Flat()
	want := [][2]string{
		{"T1.1", "T2.1"}, // a
		{"T1.1", "T3.1"}, // a
		{"T1.2", "T2.2"}, // b
		{"T1.2", "T3.2"}, // b
		{"T2.2", "T3.1"}, // d
		{"T2.1", "T4.1"}, // c
		{"T3.1", "T4.1"}, // e
		{"T2.2", "T4.2"}, // d
		{"T3.2", "T4.2"}, // f
	}
	for _, w := range want {
		if !c.HasEdge(w[0], w[1]) {
			t.Errorf("missing edge %s → %s", w[0], w[1])
		}
	}
	if c.HasEdge("T1.1", "T2.2") || c.HasEdge("T1.2", "T2.1") {
		t.Error("cross-variable edges must not exist")
	}
}

// TestFigure2WeakGraph: listing 3's capture must show (a) the outer tasks
// with weak links only among themselves, and (b) inbound (dashed) edges
// from the weak parents into their subtasks.
func TestFigure2WeakGraph(t *testing.T) {
	c, _ := Listing3Weak()

	// Figure 2a: outer-level links exist (they are weak: recorded as
	// normal domain links, but none defers execution — that part is
	// covered by the runtime tests).
	outer := c.OuterOnly()
	hasOuter := func(p, s string) bool {
		for _, e := range outer {
			if e.Pred == p && e.Succ == s {
				return true
			}
		}
		return false
	}
	for _, w := range [][2]string{{"T1", "T2"}, {"T1", "T3"}, {"T2", "T3"}, {"T2", "T4"}, {"T3", "T4"}} {
		if !hasOuter(w[0], w[1]) {
			t.Errorf("missing outer link %s → %s (Figure 2a)", w[0], w[1])
		}
	}

	// Figure 2b: inner tasks inherit pending dependencies through the weak
	// parent accesses — inbound edges parent → child.
	inbound := map[[2]string]bool{}
	for _, e := range c.Edges() {
		if e.Inbound {
			inbound[[2]string{e.Pred, e.Succ}] = true
		}
	}
	for _, w := range [][2]string{{"T2", "T2.1"}, {"T2", "T2.2"}, {"T3", "T3.1"}, {"T3", "T3.2"}, {"T4", "T4.1"}, {"T4", "T4.2"}} {
		if !inbound[w] {
			t.Errorf("missing inbound link %s → %s (Figure 2b)", w[0], w[1])
		}
	}
	// T1's children must NOT have inbound links: T1's accesses are strong
	// and satisfied when the children are created.
	if inbound[[2]string{"T1", "T1.1"}] || inbound[[2]string{"T1", "T1.2"}] {
		t.Error("T1's children must not wait on T1 (strong parent access)")
	}
}

// TestDOTRender: the DOT output contains clusters, nodes and styled edges.
func TestDOTRender(t *testing.T) {
	c, vars := Listing3Weak()
	dot := c.DOT("fig2b", vars)
	for _, want := range []string{
		"digraph", "subgraph \"cluster_T1\"", "\"T1.1\"",
		"style=dashed", "style=solid", "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// TestDOTFlat: flat graphs have no clusters.
func TestDOTFlat(t *testing.T) {
	c, vars := Listing1Flat()
	dot := c.DOT("fig1b", vars)
	if strings.Contains(dot, "cluster") {
		t.Error("flat graph should have no clusters")
	}
	if !strings.Contains(dot, "\"T1.1\" -> \"T2.1\"") {
		t.Errorf("missing flat edge in DOT:\n%s", dot)
	}
}

// TestCaptureReleaseEvents: releases are recorded (used by tooling).
func TestCaptureReleaseEvents(t *testing.T) {
	c, _ := Listing1Flat()
	c.mu.Lock()
	n := len(c.released)
	c.mu.Unlock()
	if n == 0 {
		t.Fatal("no release events captured")
	}
}
