// Command taskgraph emits the dependency graphs of the paper's Figures 1
// and 2 as Graphviz DOT, captured live from the runtime executing the
// programs of listings 1 and 3.
//
// Usage:
//
//	taskgraph -fig 1a   # listing 1, two levels, strong deps (Figure 1a)
//	taskgraph -fig 1b   # listing 1 flattened (Figure 1b)
//	taskgraph -fig 2a   # listing 3, outer tasks only (Figure 2a)
//	taskgraph -fig 2b   # listing 3 with inbound weak links (Figure 2b)
//	taskgraph -fig 2c   # the flat-equivalent graph after weakwait release
//
// Figure 2c shows the graph the runtime's execution is ordering-equivalent
// to after the outer tasks exit (fine-grained release merges every inner
// domain into the root domain); the equivalence itself is asserted by the
// runtime's tests.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graphdump"
)

func main() {
	fig := flag.String("fig", "2b", "figure to emit: 1a, 1b, 2a, 2b or 2c")
	flag.Parse()

	switch *fig {
	case "1a":
		c, vars := graphdump.Listing1Nested()
		fmt.Print(c.DOT("figure-1a", vars))
	case "1b":
		c, vars := graphdump.Listing1Flat()
		fmt.Print(c.DOT("figure-1b", vars))
	case "2a":
		c, _ := graphdump.Listing3Weak()
		fmt.Println("digraph \"figure-2a\" {")
		fmt.Println("  node [shape=box];")
		for _, e := range c.OuterOnly() {
			fmt.Printf("  %q -> %q [style=dashed];\n", e.Pred, e.Succ)
		}
		fmt.Println("}")
	case "2b":
		c, vars := graphdump.Listing3Weak()
		fmt.Print(c.DOT("figure-2b", vars))
	case "2c":
		fmt.Println("// Figure 2c: after the outer tasks exit, the fine-grained release")
		fmt.Println("// merges every inner domain into the root domain; the effective")
		fmt.Println("// ordering equals the flat graph of figure 1b (runtime-verified).")
		c, vars := graphdump.Listing1Flat()
		fmt.Print(c.DOT("figure-2c", vars))
	default:
		fmt.Fprintf(os.Stderr, "taskgraph: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
