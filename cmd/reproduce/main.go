// Command reproduce runs the paper's full evaluation — Table I and Figures
// 3 through 7 — in order, printing every table and series. Use -scale to
// approach the paper's problem sizes (they need several GiB of RAM and many
// core-hours) and -quick for a smoke pass.
//
// Usage:
//
//	reproduce [-scale 1.0] [-cores N] [-reps 3] [-quick] [-out report.txt]
//	reproduce -replay [-replay-json BENCH_replay.json]
//	reproduce -ws [-ws-json BENCH_ws.json]
//
// -replay runs only the record-and-replay graph-region experiment (the
// before/after per-sweep comparison of the taskgraph cache), optionally
// writing the rows to a JSON file. -ws runs only the worksharing
// experiment (fine-grain loops as per-chunk tasks vs one chunk-distributed
// task per region), likewise optionally writing a JSON record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	cores := flag.Int("cores", 0, "real-mode worker count (default GOMAXPROCS)")
	reps := flag.Int("reps", 3, "repetitions per point (best kept)")
	quick := flag.Bool("quick", false, "tiny sizes for a fast smoke run")
	ext := flag.Bool("ext", false, "also run the beyond-the-paper extension experiments")
	replayBench := flag.Bool("replay", false, "run only the record-and-replay graph-region experiment")
	replayJSON := flag.String("replay-json", "", "with -replay: also write the rows to this JSON file (e.g. BENCH_replay.json)")
	wsBench := flag.Bool("ws", false, "run only the worksharing chunk-distribution experiment")
	wsJSON := flag.String("ws-json", "", "with -ws: also write the rows to this JSON file (e.g. BENCH_ws.json)")
	out := flag.String("out", "", "also write the report to this file")
	csvDir := flag.String("csv", "", "also write each experiment's series as CSV files into this directory")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	o := harness.Options{Scale: *scale, Cores: *cores, Reps: *reps, Quick: *quick, CSVDir: *csvDir}
	if *replayBench {
		if err := harness.ReplayBench(w, o, *replayJSON); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *wsBench {
		if err := harness.WSBench(w, o, *wsJSON); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := harness.All(w, o); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
	if *ext {
		if err := harness.Extensions(w, o); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}
}
