// Command reproduce runs the paper's full evaluation — Table I and Figures
// 3 through 7 — in order, printing every table and series. Use -scale to
// approach the paper's problem sizes (they need several GiB of RAM and many
// core-hours) and -quick for a smoke pass.
//
// Usage:
//
//	reproduce [-scale 1.0] [-cores N] [-reps 3] [-quick] [-out report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	cores := flag.Int("cores", 0, "real-mode worker count (default GOMAXPROCS)")
	reps := flag.Int("reps", 3, "repetitions per point (best kept)")
	quick := flag.Bool("quick", false, "tiny sizes for a fast smoke run")
	ext := flag.Bool("ext", false, "also run the beyond-the-paper extension experiments")
	out := flag.String("out", "", "also write the report to this file")
	csvDir := flag.String("csv", "", "also write each experiment's series as CSV files into this directory")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	o := harness.Options{Scale: *scale, Cores: *cores, Reps: *reps, Quick: *quick, CSVDir: *csvDir}
	if err := harness.All(w, o); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
	if *ext {
		if err := harness.Extensions(w, o); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}
}
