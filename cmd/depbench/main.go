// Command depbench quantifies dependency-engine lock contention: the same
// disjoint-data chain workload (w generator goroutines, each registering
// and completing a serial chain of tasks over its own data object) runs
// through the global-lock engine and the per-data-object sharded engine at
// increasing worker counts.
//
// Two measurements are reported per configuration:
//
//   - wall time / throughput, which on a large host shows the sharded
//     engine scaling where the global engine flatlines;
//   - total mutex wait time (the runtime/metrics /sync/mutex/wait/total
//     counter), which exposes the serialization even on small or
//     oversubscribed hosts where wall clock cannot: the global engine
//     accumulates lock wait proportional to worker count while the
//     sharded engine's stays near zero, because disjoint data never
//     shares a lock.
//
// Usage: depbench [-ops N] [-workers 1,2,4,8]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/deps"
	"repro/internal/regions"
)

func mutexWait() time.Duration {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	return time.Duration(sample[0].Value.Float64() * float64(time.Second))
}

// engineLockCycles sums mutex-contention cycles attributed to the deps
// package by the runtime mutex profiler — unlike the process-wide wait
// counter it excludes allocator and scheduler locks, so it isolates
// exactly the serialization the sharded engine removes.
func engineLockCycles() int64 {
	n, _ := runtime.MutexProfile(nil)
	records := make([]runtime.BlockProfileRecord, n+50)
	n, ok := runtime.MutexProfile(records)
	for !ok {
		// The profile grew past our slack between the two calls; resize
		// and retry rather than returning a bogus (delta-breaking) zero.
		records = make([]runtime.BlockProfileRecord, len(records)*2)
		n, ok = runtime.MutexProfile(records)
	}
	var cycles int64
	for _, r := range records[:n] {
		for _, pc := range r.Stack() {
			f := runtime.FuncForPC(pc)
			if f != nil && strings.Contains(f.Name(), "repro/internal/deps.") {
				cycles += r.Cycles
				break
			}
		}
	}
	return cycles
}

// run drives ops register→complete chain steps split over w goroutines
// (rounded down to a multiple of w; the actual count is returned), each
// goroutine on its own data object, and returns the wall time and the
// process-wide mutex wait accumulated during the run.
func run(kind deps.EngineKind, w, ops int) (ranOps int, wall, wait time.Duration, lockCycles int64) {
	e := deps.NewEngine(kind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	parents := make([]*deps.Node, w)
	for i := range parents {
		parents[i] = e.NewNode(root, fmt.Sprintf("gen%d", i), nil)
		e.Register(parents[i], nil)
	}
	perW := ops / w
	var wg sync.WaitGroup
	wait0 := mutexWait()
	cyc0 := engineLockCycles()
	start := time.Now()
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := deps.DataID(i)
			ivs := []regions.Interval{regions.Iv(0, 64)}
			var prev *deps.Node
			for n := 0; n < perW; n++ {
				nd := e.NewNode(parents[i], "t", nil)
				e.Register(nd, []deps.Spec{{Data: data, Type: deps.InOut, Ivs: ivs}})
				if prev != nil {
					e.Complete(prev)
				}
				prev = nd
			}
			if prev != nil {
				e.Complete(prev)
			}
		}(i)
	}
	wg.Wait()
	return perW * w, time.Since(start), mutexWait() - wait0, engineLockCycles() - cyc0
}

func main() {
	opsFlag := flag.Int("ops", 400_000, "chain steps per configuration")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	flag.Parse()

	var workers []int
	for _, s := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "depbench: bad worker count %q\n", s)
			os.Exit(2)
		}
		workers = append(workers, n)
	}

	// Keep the collector out of the measurement as far as possible: the
	// workload allocates nodes and fragments, and GC's own locks would
	// pollute the mutex-wait counter.
	debug.SetGCPercent(1000)
	runtime.SetMutexProfileFraction(1)

	fmt.Printf("%-8s %8s %12s %12s %10s %14s %18s\n",
		"engine", "workers", "ops", "wall", "Mops/s", "mutex-wait", "engine-lock-Gcyc")
	for _, w := range workers {
		prev := runtime.GOMAXPROCS(0)
		if w > prev {
			runtime.GOMAXPROCS(w)
		}
		for _, kind := range []deps.EngineKind{deps.EngineGlobal, deps.EngineSharded} {
			// Warm-up pass absorbs one-time costs (shard tables, size
			// classes), then the measured pass.
			run(kind, w, *opsFlag/10)
			runtime.GC()
			ranOps, wall, wait, cycles := run(kind, w, *opsFlag)
			fmt.Printf("%-8s %8d %12d %12s %10.2f %14s %18.3f\n",
				kind, w, ranOps, wall.Round(time.Millisecond),
				float64(ranOps)/wall.Seconds()/1e6, wait.Round(10*time.Microsecond),
				float64(cycles)/1e9)
		}
		runtime.GOMAXPROCS(prev)
	}
}
