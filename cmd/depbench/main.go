// Command depbench quantifies runtime lock contention on the three hot
// paths the sharded subsystems remove locks from, printing one table per
// path:
//
//   - deps: the dependency engine. The same disjoint-data chain workload
//     (w generator goroutines, each registering and completing a serial
//     chain of tasks over its own data object) runs through the
//     global-lock engine and the per-data-object sharded engine.
//   - sched: the scheduler admission path. The analogous disjoint chain
//     workload (w runner chains, each submitting its successor from its
//     own worker and chaining through Finish) runs through the single-lock
//     ready pools and the sharded (lock-free deque) pools.
//   - throttle: the open-task admission window (bounded lookahead). The
//     analogous cycle workload (w submitters sharing one contended window,
//     each cycling reserve → enter → start) runs through the mutex+cond
//     reference window and the sharded token-bucket window.
//   - replay: the record-and-replay taskgraph cache. The Gauss-Seidel
//     wavefront sweep (one graph region per iteration, empty tile bodies
//     so only runtime overhead is measured) runs three ways: the paper's
//     nest-weak formulation through the live engine, the graph-region
//     formulation through the live engine, and the graph-region
//     formulation replayed from the frozen recording — the last bypasses
//     the dependency engine entirely, so its per-iteration overhead is
//     the cost of atomic countdowns plus ready-pool admission.
//   - ws: the worksharing chunk distribution. A chain of fine-grained
//     loop regions (union inout over one data object, chunk bodies that
//     spin proportionally to chunk length) runs twice per grain: expanded
//     to one task per chunk (the Taskloop shape) and as one worksharing
//     task whose chunks self-schedule against a shared cursor. The table
//     reports wall time, allocations per thousand chunks, the chunks
//     executed by announced helpers (the redistributed work), worker idle
//     time, and the expand/chunked speedup — which grows as the grain
//     shrinks, because the expansion pays a full task lifecycle per chunk
//     while the worksharing region pays one lifecycle plus an atomic add
//     per chunk.
//   - wait: the Taskwait blocking strategies. A nested-taskwait workload
//     (parents submitting spinning leaf children and blocking on them,
//     repeated in waves) runs through the parking reference and the
//     continuation handoff; the table reports parks, handoffs,
//     steal-resumes, and worker idle time per width. The continuation rows
//     must show zero parks at every width — a blocked wait's resume rides
//     the ready pools instead of parking the worker.
//
// Measurements per configuration:
//
//   - wall time / throughput, which on a large host shows the sharded
//     implementations scaling where the single-lock ones flatline;
//   - total mutex wait time (the runtime/metrics /sync/mutex/wait/total
//     counter), which exposes the serialization even on small or
//     oversubscribed hosts where wall clock cannot: the single-lock
//     implementations accumulate lock wait proportional to worker count
//     while the sharded ones' stays near zero;
//   - package-attributed mutex contention cycles (runtime.MutexProfile
//     filtered to the package under test), isolating exactly the locks the
//     sharding removes;
//   - allocations per 1000 ops and total GC pause accumulated during the
//     run (runtime.MemStats deltas), which quantify the allocator and
//     collector traffic the pooled memory mode (core.Config.MemPool,
//     internal/mempool) removes from the task lifecycle — compare the
//     sharded engine row against sharded-pool;
//   - for the scheduler pools, the steal rate (items taken from another
//     worker's shard per 1000 ops) — the redistribution cost of sharding
//     the ready pool (with steal-half, one miss migrates up to half the
//     victim's items to the thief);
//   - for the throttle windows, the parked-submitter count (reservers that
//     exhausted every credit source and slept) — the slow-path traffic the
//     token bucket keeps off the submission path.
//
// Usage:
//
//	depbench [-mode all|deps|sched|throttle|replay|ws|wait] [-workers 1,2,4,8]
//	         [-ops N] [-sched-ops N] [-throttle-ops N] [-window N]
//	         [-replay-iters N] [-replay-blocks N] [-ws-iters N] [-ws-grain G,G,...]
//	         [-wait-reps N] [-wait-fan N]
//
// -ops, -sched-ops, and -throttle-ops size the three workloads
// independently (admission cycles are far cheaper than engine ops, so the
// later tables need longer runs for contention to accumulate measurably).
// -window sets the throttle bound; 0 (the default) uses the row's worker
// count, the tightest window that still lets every submitter run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/mempool"
	"repro/internal/regions"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/throttle"
)

// memCounters samples the allocator/collector counters the alloc columns
// are computed from.
func memCounters() (mallocs uint64, gcPause time.Duration) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, time.Duration(ms.PauseTotalNs)
}

func mutexWait() time.Duration {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	return time.Duration(sample[0].Value.Float64() * float64(time.Second))
}

// pkgLockCycles sums mutex-contention cycles attributed to pkg (e.g.
// "repro/internal/deps.") by the runtime mutex profiler — unlike the
// process-wide wait counter it excludes allocator and scheduler locks, so
// it isolates exactly the serialization the sharded implementations
// remove.
func pkgLockCycles(pkg string) int64 {
	n, _ := runtime.MutexProfile(nil)
	records := make([]runtime.BlockProfileRecord, n+50)
	n, ok := runtime.MutexProfile(records)
	for !ok {
		// The profile grew past our slack between the two calls; resize
		// and retry rather than returning a bogus (delta-breaking) zero.
		records = make([]runtime.BlockProfileRecord, len(records)*2)
		n, ok = runtime.MutexProfile(records)
	}
	var cycles int64
	for _, r := range records[:n] {
		frames := runtime.CallersFrames(r.Stack())
		for {
			f, more := frames.Next()
			// CallersFrames (unlike FuncForPC) expands inlined calls, so a
			// lock helper inlined into its caller still attributes here.
			if strings.Contains(f.Function, pkg) {
				cycles += r.Cycles
				break
			}
			if !more {
				break
			}
		}
	}
	return cycles
}

// runDeps drives ops register→complete chain steps split over w goroutines
// (rounded down to a multiple of w; the actual count is returned), each
// goroutine on its own data object, and returns the wall time and the
// process-wide mutex wait accumulated during the run.
func runDeps(kind deps.EngineKind, mem mempool.Kind, w, ops int) (ranOps int, wall, wait time.Duration, lockCycles int64, allocs uint64, gcPause time.Duration) {
	e := deps.NewEngineMem(kind, nil, mem)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	parents := make([]*deps.Node, w)
	for i := range parents {
		parents[i] = e.NewNode(root, fmt.Sprintf("gen%d", i), nil)
		e.Register(parents[i], nil)
	}
	perW := ops / w
	var wg sync.WaitGroup
	wait0 := mutexWait()
	cyc0 := pkgLockCycles("repro/internal/deps.")
	m0, p0 := memCounters()
	start := time.Now()
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := deps.DataID(i)
			spec := []deps.Spec{{Data: data, Type: deps.InOut, Ivs: []regions.Interval{regions.Iv(0, 64)}}}
			buf := make([]*deps.Node, 0, 4)
			var prev *deps.Node
			for n := 0; n < perW; n++ {
				nd := e.NewNode(parents[i], "t", nil)
				e.Register(nd, spec)
				if prev != nil {
					e.CompleteInto(prev, buf[:0])
				}
				prev = nd
			}
			if prev != nil {
				e.CompleteInto(prev, buf[:0])
			}
		}(i)
	}
	wg.Wait()
	wall = time.Since(start)
	m1, p1 := memCounters()
	return perW * w, wall, mutexWait() - wait0, pkgLockCycles("repro/internal/deps.") - cyc0, m1 - m0, p1 - p0
}

// statser is implemented by the ready pools that report steal counters.
type statser interface {
	Stats() sched.PoolStats
}

// runSched drives ops submit→finish chain steps split over w runner
// chains, each chain submitting its successor from its own worker — the
// scheduler-admission analogue of the disjoint dependency chains: all
// chains are independent, so the only serialization is the ready pool's
// own locking.
func runSched(mk func(workers int, spawn func(item, worker int)) sched.Queue[int], w, ops int) (ranOps int, wall, wait time.Duration, lockCycles, steals int64, allocs uint64, gcPause time.Duration) {
	perW := ops / w
	remaining := make([]atomic.Int64, w)
	for i := range remaining {
		remaining[i].Store(int64(perW))
	}
	var done sync.WaitGroup
	done.Add(w)
	var q sched.Queue[int]
	q = mk(w, func(chain, worker int) {
		for {
			if remaining[chain].Add(-1) > 0 {
				q.Submit(chain, worker)
			} else {
				done.Done()
			}
			next, ok := q.Finish(worker)
			if !ok {
				return
			}
			chain = next
		}
	})
	wait0 := mutexWait()
	cyc0 := pkgLockCycles("repro/internal/sched.")
	m0, p0 := memCounters()
	start := time.Now()
	for i := 0; i < w; i++ {
		q.Submit(i, -1)
	}
	done.Wait()
	wall = time.Since(start)
	wait = mutexWait() - wait0
	lockCycles = pkgLockCycles("repro/internal/sched.") - cyc0
	m1, p1 := memCounters()
	if st, ok := q.(statser); ok {
		steals = st.Stats().Steals
	}
	return perW * w, wall, wait, lockCycles, steals, m1 - m0, p1 - p0
}

// runThrottle drives ops reserve→enter→start cycles split over w
// submitter goroutines sharing one admission window of the given bound —
// the throttle analogue of the disjoint chains: the submitters share
// nothing but the window itself, so the only serialization is the window's
// own synchronization (the locked window broadcasts under a mutex on every
// start; the sharded one works per-worker credit caches).
func runThrottle(kind throttle.Kind, w, ops, window int) (ranOps int, wall, wait time.Duration, lockCycles, parks int64, allocs uint64, gcPause time.Duration) {
	win := throttle.New(kind, window, w)
	perW := ops / w
	var wg sync.WaitGroup
	wait0 := mutexWait()
	cyc0 := pkgLockCycles("repro/internal/throttle.")
	m0, p0 := memCounters()
	start := time.Now()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_, prepaid := win.Reserve(g, nil)
				if prepaid {
					win.EnteredReserved()
				} else {
					win.Entered(1)
				}
				win.Started(g)
			}
		}(g)
	}
	wg.Wait()
	wall = time.Since(start)
	m1, p1 := memCounters()
	return perW * w, wall, mutexWait() - wait0,
		pkgLockCycles("repro/internal/throttle.") - cyc0, win.Stats().Parks, m1 - m0, p1 - p0
}

// replayVariant names one formulation of the Gauss-Seidel wavefront sweep
// for the replay table.
type replayVariant uint8

const (
	rvNestWeak replayVariant = iota // weakwait iteration tasks (§VIII-B nest-weak)
	rvLive                          // graph regions through the live engine
	rvReplay                        // graph regions replayed from the recording
)

// runReplay drives iters sweeps of a blocks×blocks tile wavefront with
// empty bodies — pure runtime overhead — and returns the wall time plus
// the usual allocator/contention counters.
func runReplay(v replayVariant, w, blocks, iters int) (tasksPerIter int, wall, wait time.Duration, allocs uint64, gcPause time.Duration) {
	kind := replay.KindOff
	if v == rvReplay {
		kind = replay.KindOn
	}
	rt := core.New(core.Config{Workers: w, Replay: kind})
	b := int64(blocks)
	side := b + 2
	total := side * side
	ad := rt.NewData("A", total, 8)
	blk := func(i, j int64) regions.Interval { return regions.BlockInterval(side, 1, i, j) }
	tile := func(i, j int64) core.TaskSpec {
		return core.TaskSpec{
			Label: "tile",
			Deps: []core.Dep{
				{Data: ad, Type: deps.In, Ivs: []regions.Interval{blk(i-1, j)}},
				{Data: ad, Type: deps.In, Ivs: []regions.Interval{blk(i, j-1)}},
				{Data: ad, Type: deps.InOut, Ivs: []regions.Interval{blk(i, j)}},
				{Data: ad, Type: deps.In, Ivs: []regions.Interval{blk(i, j+1)}},
				{Data: ad, Type: deps.In, Ivs: []regions.Interval{blk(i+1, j)}},
			},
			Body: func(*core.TaskContext) {},
		}
	}
	// The tile specs are built once and resubmitted every sweep, so the
	// allocs/kop column measures the runtime's per-task allocations, not
	// the driver's spec construction.
	specs := make([]core.TaskSpec, 0, blocks*blocks)
	for i := int64(1); i <= b; i++ {
		for j := int64(1); j <= b; j++ {
			specs = append(specs, tile(i, j))
		}
	}
	sweep := func(tc *core.TaskContext) {
		for k := range specs {
			tc.Submit(specs[k])
		}
	}
	iterSpec := core.TaskSpec{
		Label:    "iteration",
		WeakWait: true,
		Deps:     []core.Dep{{Data: ad, Type: deps.InOut, Weak: true, Ivs: []regions.Interval{regions.Iv(0, total)}}},
		Body:     sweep,
	}
	wait0 := mutexWait()
	m0, p0 := memCounters()
	start := time.Now()
	rt.Run(func(tc *core.TaskContext) {
		for it := 0; it < iters; it++ {
			if v == rvNestWeak {
				tc.Submit(iterSpec)
			} else {
				tc.Graph("gs-sweep", sweep)
			}
		}
	})
	wall = time.Since(start)
	m1, p1 := memCounters()
	return blocks * blocks, wall, mutexWait() - wait0, m1 - m0, p1 - p0
}

// runWs drives iters worksharing regions over [0, n) at the given grain,
// chained through a union inout entry so regions serialize and the
// intra-region chunk distribution is the only parallelism — the worst case
// for amortizing the announcement. Chunk bodies spin proportionally to
// chunk length, so total body work is grain-independent and the grain
// sweep isolates the per-chunk overhead: a full task lifecycle per chunk
// under expand, an atomic cursor add under chunked.
func runWs(kind core.WorksharingKind, w, iters int, grain, n int64) (chunks int64, wall time.Duration, allocs uint64, helper int64, idle float64) {
	rt := core.New(core.Config{Workers: w, WorksharingImpl: kind})
	ad := rt.NewData("A", n, 8)
	cpu0 := cpuTime()
	m0, _ := memCounters()
	start := time.Now()
	rt.Run(func(tc *core.TaskContext) {
		for it := 0; it < iters; it++ {
			tc.Worksharing(core.WorksharingSpec{
				Label: "ws",
				Lo:    0, Hi: n, Grain: grain,
				Deps: func(lo, hi int64) []core.Dep {
					return []core.Dep{{Data: ad, Type: deps.InOut, Ivs: []regions.Interval{regions.Iv(lo, hi)}}}
				},
				Body: func(_ *core.TaskContext, lo, hi int64) { waitSpin(int(hi - lo)) },
			})
		}
	})
	wall = time.Since(start)
	cpu := cpuTime() - cpu0
	m1, _ := memCounters()
	chunks = (n + grain - 1) / grain * int64(iters)
	helper = rt.WsStats().HelperChunks
	if wall > 0 {
		idle = 1 - float64(cpu)/(float64(w)*float64(wall))
		if idle < 0 {
			idle = 0
		}
	}
	return chunks, wall, m1 - m0, helper, idle
}

// waitSpin burns a few microseconds of CPU so the parents' taskwaits are
// guaranteed to find incomplete children (the blocking path under
// measurement); the sink defeats dead-code elimination.
var waitSink atomic.Int64

func waitSpin(n int) {
	var s int64
	for i := 0; i < n; i++ {
		s += int64(i ^ (i >> 3))
	}
	waitSink.Add(s)
}

// cpuTime returns the process's cumulative user+system CPU time. The
// taskwait table derives worker idleness from its delta: a goroutine
// blocked in a wait (parked or pool-queued) burns no CPU, while the
// spinning leaf bodies burn it continuously, so 1 - cpu/(w*wall) is the
// fraction of worker capacity the blocking strategy left unused. The
// execution trace cannot supply this — its spans deliberately include
// time blocked inside Taskwait (see executeTask).
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// runWait drives reps waves of a nested-taskwait workload: each wave
// submits 2w parent tasks, and each parent submits fan spinning leaf
// children and blocks on them twice (two batches per parent). It returns
// the blocking-wait volume, the wall time, the taskwait counters, and the
// fraction of worker capacity left idle — the cost a parked worker pays
// that a continuation handoff avoids.
func runWait(kind core.TaskwaitKind, w, reps, fan int) (waits int64, wall time.Duration, st core.TaskwaitStats, idle float64) {
	rt := core.New(core.Config{Workers: w, TaskwaitImpl: kind})
	cpu0 := cpuTime()
	start := time.Now()
	rt.Run(func(tc *core.TaskContext) {
		for rep := 0; rep < reps; rep++ {
			for p := 0; p < 2*w; p++ {
				tc.Submit(core.TaskSpec{Label: "parent", Body: func(tc *core.TaskContext) {
					for batch := 0; batch < 2; batch++ {
						for c := 0; c < fan; c++ {
							tc.Submit(core.TaskSpec{Label: "leaf", Body: func(*core.TaskContext) {
								waitSpin(2000)
							}})
						}
						tc.Taskwait()
					}
				}})
			}
			tc.Taskwait()
		}
	})
	wall = time.Since(start)
	cpu := cpuTime() - cpu0
	st = rt.TaskwaitStats()
	if wall > 0 {
		idle = 1 - float64(cpu)/(float64(w)*float64(wall))
		if idle < 0 {
			idle = 0
		}
	}
	return st.Parks + st.Handoffs, wall, st, idle
}

var schedPools = []struct {
	name string
	mk   func(workers int, spawn func(item, worker int)) sched.Queue[int]
}{
	{"locked-stealing", func(w int, s func(int, int)) sched.Queue[int] { return sched.NewLockedStealing(w, s) }},
	{"central", func(w int, s func(int, int)) sched.Queue[int] { return sched.New(w, sched.FIFO, s) }},
	{"stealing", func(w int, s func(int, int)) sched.Queue[int] { return sched.NewStealing(w, s) }},
	{"sharded-central", func(w int, s func(int, int)) sched.Queue[int] { return sched.NewShardedCentral(w, s) }},
}

func main() {
	modeFlag := flag.String("mode", "all", "which table to print: all, deps, sched, throttle, replay, or wait")
	opsFlag := flag.Int("ops", 400_000, "chain steps per dependency-engine configuration")
	// Scheduler admission ops are ~10x cheaper than engine ops, so the
	// sched table needs a longer run for lock contention to accumulate
	// measurably on small hosts; throttle cycles are cheaper still.
	schedOpsFlag := flag.Int("sched-ops", 2_000_000, "chain steps per scheduler-pool configuration")
	throttleOpsFlag := flag.Int("throttle-ops", 4_000_000, "admission cycles per throttle-window configuration")
	windowFlag := flag.Int("window", 0, "throttle window bound (0 = the row's worker count)")
	replayItersFlag := flag.Int("replay-iters", 400, "sweeps per replay-table configuration")
	replayBlocksFlag := flag.Int("replay-blocks", 8, "tile grid side of the replay-table wavefront sweep")
	wsItersFlag := flag.Int("ws-iters", 100, "loop regions per worksharing-table configuration")
	wsGrainFlag := flag.String("ws-grain", "16,64,256", "comma-separated grain sweep for the worksharing table")
	wsRangeFlag := flag.Int64("ws-n", 1<<16, "iteration-space size of each worksharing region")
	waitRepsFlag := flag.Int("wait-reps", 200, "waves per taskwait-table configuration")
	waitFanFlag := flag.Int("wait-fan", 8, "leaf children per parent in the taskwait-table workload")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	flag.Parse()

	var workers []int
	for _, s := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "depbench: bad worker count %q\n", s)
			os.Exit(2)
		}
		workers = append(workers, n)
	}
	switch *modeFlag {
	case "all", "deps", "sched", "throttle", "replay", "ws", "wait":
	default:
		fmt.Fprintf(os.Stderr, "depbench: bad mode %q (want all, deps, sched, throttle, replay, ws, or wait)\n", *modeFlag)
		os.Exit(2)
	}
	var wsGrains []int64
	for _, s := range strings.Split(*wsGrainFlag, ",") {
		g, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil || g < 1 {
			fmt.Fprintf(os.Stderr, "depbench: bad worksharing grain %q\n", s)
			os.Exit(2)
		}
		wsGrains = append(wsGrains, g)
	}

	// Keep the collector out of the measurement as far as possible: the
	// workloads allocate (nodes, fragments, deque rings), and GC's own
	// locks would pollute the mutex-wait counter.
	debug.SetGCPercent(1000)
	runtime.SetMutexProfileFraction(1)

	if *modeFlag == "all" || *modeFlag == "deps" {
		fmt.Printf("dependency engine (disjoint-data chains)\n")
		fmt.Printf("%-14s %8s %12s %12s %10s %14s %18s %11s %10s\n",
			"engine", "workers", "ops", "wall", "Mops/s", "mutex-wait", "engine-lock-Gcyc", "allocs/kop", "gc-pause")
		rows := []struct {
			name string
			kind deps.EngineKind
			mem  mempool.Kind
		}{
			{"global", deps.EngineGlobal, mempool.KindReference},
			{"sharded", deps.EngineSharded, mempool.KindReference},
			{"sharded-pool", deps.EngineSharded, mempool.KindPooled},
		}
		for _, w := range workers {
			prev := runtime.GOMAXPROCS(0)
			if w > prev {
				runtime.GOMAXPROCS(w)
			}
			for _, row := range rows {
				// Warm-up pass absorbs one-time costs (shard tables, size
				// classes, pool fills), then the measured pass.
				runDeps(row.kind, row.mem, w, *opsFlag/10)
				runtime.GC()
				ranOps, wall, wait, cycles, allocs, gcPause := runDeps(row.kind, row.mem, w, *opsFlag)
				fmt.Printf("%-14s %8d %12d %12s %10.2f %14s %18.3f %11.1f %10s\n",
					row.name, w, ranOps, wall.Round(time.Millisecond),
					float64(ranOps)/wall.Seconds()/1e6, wait.Round(10*time.Microsecond),
					float64(cycles)/1e9, float64(allocs)/float64(ranOps)*1000,
					gcPause.Round(10*time.Microsecond))
			}
			runtime.GOMAXPROCS(prev)
		}
	}

	if *modeFlag == "all" || *modeFlag == "sched" {
		if *modeFlag == "all" {
			fmt.Println()
		}
		fmt.Printf("scheduler admission path (disjoint submit/finish chains)\n")
		fmt.Printf("%-16s %8s %12s %12s %10s %14s %17s %12s %11s %10s\n",
			"pool", "workers", "ops", "wall", "Mops/s", "mutex-wait", "sched-lock-Gcyc", "steals/kop", "allocs/kop", "gc-pause")
		for _, w := range workers {
			prev := runtime.GOMAXPROCS(0)
			if w > prev {
				runtime.GOMAXPROCS(w)
			}
			for _, p := range schedPools {
				runSched(p.mk, w, *schedOpsFlag/10)
				runtime.GC()
				ranOps, wall, wait, cycles, steals, allocs, gcPause := runSched(p.mk, w, *schedOpsFlag)
				fmt.Printf("%-16s %8d %12d %12s %10.2f %14s %17.3f %12.2f %11.1f %10s\n",
					p.name, w, ranOps, wall.Round(time.Millisecond),
					float64(ranOps)/wall.Seconds()/1e6, wait.Round(10*time.Microsecond),
					float64(cycles)/1e9, float64(steals)/float64(ranOps)*1000,
					float64(allocs)/float64(ranOps)*1000, gcPause.Round(10*time.Microsecond))
			}
			runtime.GOMAXPROCS(prev)
		}
	}

	if *modeFlag == "all" || *modeFlag == "throttle" {
		if *modeFlag == "all" {
			fmt.Println()
		}
		fmt.Printf("throttle admission window (shared contended window)\n")
		fmt.Printf("%-8s %8s %8s %12s %12s %10s %14s %20s %10s %11s %10s\n",
			"impl", "workers", "window", "ops", "wall", "Mops/s", "mutex-wait", "throttle-lock-Gcyc", "parks", "allocs/kop", "gc-pause")
		for _, w := range workers {
			prev := runtime.GOMAXPROCS(0)
			if w > prev {
				runtime.GOMAXPROCS(w)
			}
			window := *windowFlag
			if window <= 0 {
				window = w
			}
			for _, kind := range []throttle.Kind{throttle.KindLocked, throttle.KindSharded} {
				runThrottle(kind, w, *throttleOpsFlag/10, window)
				runtime.GC()
				ranOps, wall, wait, cycles, parks, allocs, gcPause := runThrottle(kind, w, *throttleOpsFlag, window)
				fmt.Printf("%-8s %8d %8d %12d %12s %10.2f %14s %20.3f %10d %11.1f %10s\n",
					kind, w, window, ranOps, wall.Round(time.Millisecond),
					float64(ranOps)/wall.Seconds()/1e6, wait.Round(10*time.Microsecond),
					float64(cycles)/1e9, parks, float64(allocs)/float64(ranOps)*1000,
					gcPause.Round(10*time.Microsecond))
			}
			runtime.GOMAXPROCS(prev)
		}
	}

	if *modeFlag == "all" || *modeFlag == "replay" {
		if *modeFlag == "all" {
			fmt.Println()
		}
		iters, blocks := *replayItersFlag, *replayBlocksFlag
		fmt.Printf("record-and-replay taskgraph cache (Gauss-Seidel wavefront sweep, empty bodies)\n")
		fmt.Printf("%-14s %8s %10s %8s %12s %12s %14s %11s %10s %9s\n",
			"variant", "workers", "tiles/it", "iters", "wall", "us/iter", "mutex-wait", "allocs/kop", "gc-pause", "overhead")
		rows := []struct {
			name string
			v    replayVariant
		}{
			{"live-nestweak", rvNestWeak},
			{"live-graph", rvLive},
			{"replay", rvReplay},
		}
		for _, w := range workers {
			prev := runtime.GOMAXPROCS(0)
			if w > prev {
				runtime.GOMAXPROCS(w)
			}
			var liveGraphPerIter float64
			for _, row := range rows {
				runReplay(row.v, w, blocks, iters/10+1) // warm-up
				runtime.GC()
				tiles, wall, wait, allocs, gcPause := runReplay(row.v, w, blocks, iters)
				ops := tiles * iters
				perIter := float64(wall.Microseconds()) / float64(iters)
				cut := "1.00x"
				switch row.v {
				case rvLive:
					liveGraphPerIter = perIter
				case rvReplay:
					if perIter > 0 && liveGraphPerIter > 0 {
						// The acceptance metric: live-engine sweeps cost this
						// many times the replayed sweeps' overhead.
						cut = fmt.Sprintf("%.2fx", liveGraphPerIter/perIter)
					}
				default:
					cut = "-"
				}
				fmt.Printf("%-14s %8d %10d %8d %12s %12.1f %14s %11.1f %10s %9s\n",
					row.name, w, tiles, iters, wall.Round(time.Millisecond), perIter,
					wait.Round(10*time.Microsecond), float64(allocs)/float64(ops)*1000,
					gcPause.Round(10*time.Microsecond), cut)
			}
			runtime.GOMAXPROCS(prev)
		}
	}

	if *modeFlag == "all" || *modeFlag == "ws" {
		if *modeFlag == "all" {
			fmt.Println()
		}
		iters, n := *wsItersFlag, *wsRangeFlag
		fmt.Printf("worksharing chunk distribution (chained fine-grain loop regions)\n")
		fmt.Printf("%-8s %8s %7s %10s %8s %12s %12s %11s %12s %7s %9s\n",
			"impl", "workers", "grain", "chunks/it", "iters", "wall", "us/iter", "allocs/kop", "helper-chks", "idle", "speedup")
		kinds := []struct {
			name string
			kind core.WorksharingKind
		}{
			{"expand", core.WorksharingExpand},
			{"chunked", core.WorksharingChunked},
		}
		for _, w := range workers {
			prev := runtime.GOMAXPROCS(0)
			if w > prev {
				runtime.GOMAXPROCS(w)
			}
			for _, grain := range wsGrains {
				var expandWall time.Duration
				for _, row := range kinds {
					runWs(row.kind, w, iters/10+1, grain, n) // warm-up
					runtime.GC()
					chunks, wall, allocs, helper, idle := runWs(row.kind, w, iters, grain, n)
					speedup := "-"
					if row.kind == core.WorksharingExpand {
						expandWall = wall
					} else if wall > 0 && expandWall > 0 {
						// The acceptance metric: the per-chunk-task expansion
						// costs this many times the worksharing region.
						speedup = fmt.Sprintf("%.2fx", float64(expandWall)/float64(wall))
					}
					fmt.Printf("%-8s %8d %7d %10d %8d %12s %12.1f %11.1f %12d %6.1f%% %9s\n",
						row.name, w, grain, chunks/int64(iters), iters, wall.Round(time.Millisecond),
						float64(wall.Microseconds())/float64(iters),
						float64(allocs)/float64(chunks)*1000, helper, idle*100, speedup)
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}

	if *modeFlag == "all" || *modeFlag == "wait" {
		if *modeFlag == "all" {
			fmt.Println()
		}
		reps, fan := *waitRepsFlag, *waitFanFlag
		fmt.Printf("taskwait blocking strategy (nested parents over spinning leaves)\n")
		fmt.Printf("%-13s %8s %10s %12s %10s %10s %10s %11s %7s\n",
			"impl", "workers", "waits", "wall", "us/wait", "parks", "handoffs", "steal-res", "idle")
		kinds := []struct {
			name string
			kind core.TaskwaitKind
		}{
			{"parking", core.TaskwaitParking},
			{"continuation", core.TaskwaitContinuation},
		}
		for _, w := range workers {
			prev := runtime.GOMAXPROCS(0)
			if w > prev {
				runtime.GOMAXPROCS(w)
			}
			for _, row := range kinds {
				runWait(row.kind, w, reps/10+1, fan) // warm-up
				runtime.GC()
				waits, wall, st, idle := runWait(row.kind, w, reps, fan)
				fmt.Printf("%-13s %8d %10d %12s %10.2f %10d %10d %11d %6.1f%%\n",
					row.name, w, waits, wall.Round(time.Millisecond),
					float64(wall.Microseconds())/float64(waits),
					st.Parks, st.Handoffs, st.StealResumes, idle*100)
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}
