// Command depbench quantifies runtime lock contention on the hot paths
// the sharded subsystems remove locks from, printing one table per path:
//
//   - deps: the dependency engine. The same disjoint-data chain workload
//     (w generator goroutines, each registering and completing a serial
//     chain of tasks over its own data object) runs through the
//     global-lock engine and the per-data-object sharded engine.
//   - sched: the scheduler admission path. The analogous disjoint chain
//     workload (w runner chains, each submitting its successor from its
//     own worker and chaining through Finish) runs through the single-lock
//     ready pools and the sharded (lock-free deque) pools.
//   - throttle: the open-task admission window (bounded lookahead). The
//     analogous cycle workload (w submitters sharing one contended window,
//     each cycling reserve → enter → start) runs through the mutex+cond
//     reference window and the sharded token-bucket window.
//   - replay: the record-and-replay taskgraph cache. The Gauss-Seidel
//     wavefront sweep (one graph region per iteration, empty tile bodies
//     so only runtime overhead is measured) runs three ways: the paper's
//     nest-weak formulation through the live engine, the graph-region
//     formulation through the live engine, and the graph-region
//     formulation replayed from the frozen recording — the last bypasses
//     the dependency engine entirely, so its per-iteration overhead is
//     the cost of atomic countdowns plus ready-pool admission.
//   - ws: the worksharing chunk distribution. A chain of fine-grained
//     loop regions (union inout over one data object, chunk bodies that
//     spin proportionally to chunk length) runs twice per grain: expanded
//     to one task per chunk (the Taskloop shape) and as one worksharing
//     task whose chunks self-schedule against a shared cursor.
//   - wait: the Taskwait blocking strategies. A nested-taskwait workload
//     (parents submitting spinning leaf children and blocking on them,
//     repeated in waves) runs through the parking reference and the
//     continuation handoff; the continuation rows must show zero parks at
//     every width — a blocked wait's resume rides the ready pools instead
//     of parking the worker.
//   - locality: the topology-aware steal victim selection. An imbalanced
//     drain workload (each core group's work piled on one shard, every
//     other worker progressing only by stealing) runs through the
//     stealing pool over a synthetic two-domain topology twice: flat
//     victim order (the reference) and the nearest-first tree walk. The
//     columns are the steal-distance histogram (sibling / in-domain /
//     cross-domain) and the cross-group steal rate, which the tree rows
//     must push toward the sibling level.
//   - chaos: the fault-injection robustness table. The mixed-construct
//     workload (graph regions, nested taskwait, worksharing, taskgroups)
//     runs once per subsystem group of failpoint sites (internal/chaos)
//     under a fixed seeded schedule, with the stall watchdog armed. The
//     columns are wall time, failpoint hits, and the stall-report count;
//     the expectation printed under the table is 0 stalls on every row —
//     failpoints widen race windows but never drop operations, so a
//     correct runtime under chaos is slower, never stuck. This table is
//     not in -mode all: it measures robustness, not contention.
//
// The benchmark kernels live in internal/harness (DepsBench, SchedBench,
// ThrottleBench, ReplayOverheadBench, WSChunkBench, WaitBench,
// LocalityBench), shared with cmd/perftrack; see that package for the
// per-kernel workload and counter documentation. This command owns the
// sweep loops, warm-up passes, and formatting.
//
// Usage:
//
//	depbench [-mode all|deps|sched|throttle|replay|ws|wait|locality|chaos] [-workers 1,2,4,8]
//	         [-ops N] [-sched-ops N] [-throttle-ops N] [-window N]
//	         [-replay-iters N] [-replay-blocks N] [-ws-iters N] [-ws-grain G,G,...]
//	         [-wait-reps N] [-wait-fan N] [-locality-ops N] [-locality-spin N]
//	         [-chaos-seed S] [-chaos-rate N] [-chaos-iters N] [-json]
//
// -ops, -sched-ops, and -throttle-ops size the three workloads
// independently (admission cycles are far cheaper than engine ops, so the
// later tables need longer runs for contention to accumulate measurably).
// -window sets the throttle bound; 0 (the default) uses the row's worker
// count, the tightest window that still lets every submitter run.
//
// -json replaces the text tables with one machine-readable JSON array on
// stdout: one object per table row, {"table","row","workers","params",
// "metrics"}, with every numeric column under its snake_case key in
// "metrics". cmd/perftrack and plotting pipelines consume this form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/harness"
	"repro/internal/mempool"
	"repro/internal/sched"
	"repro/internal/throttle"
)

// row is one table row of the -json output.
type row struct {
	Table   string             `json:"table"`
	Row     string             `json:"row"`
	Workers int                `json:"workers"`
	Params  map[string]int64   `json:"params,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// emitter collects rows for -json or prints text lines, never both.
type emitter struct {
	json bool
	rows []row
}

// printf prints only in text mode.
func (e *emitter) printf(format string, args ...any) {
	if !e.json {
		fmt.Printf(format, args...)
	}
}

// add records one row in JSON mode.
func (e *emitter) add(table, name string, workers int, params map[string]int64, metrics map[string]float64) {
	if e.json {
		e.rows = append(e.rows, row{Table: table, Row: name, Workers: workers, Params: params, Metrics: metrics})
	}
}

// flush writes the collected rows as a JSON array.
func (e *emitter) flush() error {
	if !e.json {
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(e.rows)
}

// withGOMAXPROCS raises GOMAXPROCS to at least w around f.
func withGOMAXPROCS(w int, f func()) {
	prev := runtime.GOMAXPROCS(0)
	if w > prev {
		runtime.GOMAXPROCS(w)
	}
	f()
	runtime.GOMAXPROCS(prev)
}

func main() {
	modeFlag := flag.String("mode", "all", "which table to print: all, deps, sched, throttle, replay, ws, wait, or locality")
	opsFlag := flag.Int("ops", 400_000, "chain steps per dependency-engine configuration")
	// Scheduler admission ops are ~10x cheaper than engine ops, so the
	// sched table needs a longer run for lock contention to accumulate
	// measurably on small hosts; throttle cycles are cheaper still.
	schedOpsFlag := flag.Int("sched-ops", 2_000_000, "chain steps per scheduler-pool configuration")
	throttleOpsFlag := flag.Int("throttle-ops", 4_000_000, "admission cycles per throttle-window configuration")
	windowFlag := flag.Int("window", 0, "throttle window bound (0 = the row's worker count)")
	replayItersFlag := flag.Int("replay-iters", 400, "sweeps per replay-table configuration")
	replayBlocksFlag := flag.Int("replay-blocks", 8, "tile grid side of the replay-table wavefront sweep")
	wsItersFlag := flag.Int("ws-iters", 100, "loop regions per worksharing-table configuration")
	wsGrainFlag := flag.String("ws-grain", "16,64,256", "comma-separated grain sweep for the worksharing table")
	wsRangeFlag := flag.Int64("ws-n", 1<<16, "iteration-space size of each worksharing region")
	waitRepsFlag := flag.Int("wait-reps", 200, "waves per taskwait-table configuration")
	waitFanFlag := flag.Int("wait-fan", 8, "leaf children per parent in the taskwait-table workload")
	localityOpsFlag := flag.Int("locality-ops", 200_000, "leaf items per locality-table configuration")
	localitySpinFlag := flag.Int("locality-spin", 400, "leaf busy-spin of the locality-table workload")
	chaosSeedFlag := flag.Uint64("chaos-seed", 1, "failpoint PRNG seed of the chaos table")
	chaosRateFlag := flag.Uint("chaos-rate", 2, "per-site fire rate denominator of the chaos table (1 = every call)")
	chaosItersFlag := flag.Int("chaos-iters", 64, "workload iterations per chaos-table row")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	jsonFlag := flag.Bool("json", false, "emit one JSON array of table rows instead of text tables")
	flag.Parse()

	var workers []int
	for _, s := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "depbench: bad worker count %q\n", s)
			os.Exit(2)
		}
		workers = append(workers, n)
	}
	switch *modeFlag {
	case "all", "deps", "sched", "throttle", "replay", "ws", "wait", "locality", "chaos":
	default:
		fmt.Fprintf(os.Stderr, "depbench: bad mode %q (want all, deps, sched, throttle, replay, ws, wait, locality, or chaos)\n", *modeFlag)
		os.Exit(2)
	}
	var wsGrains []int64
	for _, s := range strings.Split(*wsGrainFlag, ",") {
		g, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil || g < 1 {
			fmt.Fprintf(os.Stderr, "depbench: bad worksharing grain %q\n", s)
			os.Exit(2)
		}
		wsGrains = append(wsGrains, g)
	}
	em := &emitter{json: *jsonFlag}

	// Keep the collector out of the measurement as far as possible: the
	// workloads allocate (nodes, fragments, deque rings), and GC's own
	// locks would pollute the mutex-wait counter.
	debug.SetGCPercent(1000)
	runtime.SetMutexProfileFraction(1)

	if *modeFlag == "all" || *modeFlag == "deps" {
		em.printf("dependency engine (disjoint-data chains)\n")
		em.printf("%-14s %8s %12s %12s %10s %14s %18s %11s %10s\n",
			"engine", "workers", "ops", "wall", "Mops/s", "mutex-wait", "engine-lock-Gcyc", "allocs/kop", "gc-pause")
		rows := []struct {
			name string
			kind deps.EngineKind
			mem  mempool.Kind
		}{
			{"global", deps.EngineGlobal, mempool.KindReference},
			{"sharded", deps.EngineSharded, mempool.KindReference},
			{"sharded-pool", deps.EngineSharded, mempool.KindPooled},
		}
		for _, w := range workers {
			withGOMAXPROCS(w, func() {
				for _, r := range rows {
					// Warm-up pass absorbs one-time costs (shard tables, size
					// classes, pool fills), then the measured pass.
					harness.DepsBench(r.kind, r.mem, w, *opsFlag/10)
					runtime.GC()
					c := harness.DepsBench(r.kind, r.mem, w, *opsFlag)
					em.printf("%-14s %8d %12d %12s %10.2f %14s %18.3f %11.1f %10s\n",
						r.name, w, c.Ops, c.Wall.Round(time.Millisecond),
						float64(c.Ops)/c.Wall.Seconds()/1e6, c.MutexWait.Round(10*time.Microsecond),
						float64(c.LockCycles)/1e9, float64(c.Allocs)/float64(c.Ops)*1000,
						c.GCPause.Round(10*time.Microsecond))
					em.add("deps", r.name, w, nil, map[string]float64{
						"ops": float64(c.Ops), "wall_ns": float64(c.Wall),
						"mops":          float64(c.Ops) / c.Wall.Seconds() / 1e6,
						"mutex_wait_ns": float64(c.MutexWait), "lock_gcyc": float64(c.LockCycles) / 1e9,
						"allocs_per_kop": float64(c.Allocs) / float64(c.Ops) * 1000,
						"gc_pause_ns":    float64(c.GCPause),
					})
				}
			})
		}
	}

	if *modeFlag == "all" || *modeFlag == "sched" {
		if *modeFlag == "all" {
			em.printf("\n")
		}
		em.printf("scheduler admission path (disjoint submit/finish chains)\n")
		em.printf("%-16s %8s %12s %12s %10s %14s %17s %12s %11s %10s\n",
			"pool", "workers", "ops", "wall", "Mops/s", "mutex-wait", "sched-lock-Gcyc", "steals/kop", "allocs/kop", "gc-pause")
		for _, w := range workers {
			withGOMAXPROCS(w, func() {
				for _, p := range harness.SchedPools {
					harness.SchedBench(p.Make, w, *schedOpsFlag/10)
					runtime.GC()
					c, steals := harness.SchedBench(p.Make, w, *schedOpsFlag)
					em.printf("%-16s %8d %12d %12s %10.2f %14s %17.3f %12.2f %11.1f %10s\n",
						p.Name, w, c.Ops, c.Wall.Round(time.Millisecond),
						float64(c.Ops)/c.Wall.Seconds()/1e6, c.MutexWait.Round(10*time.Microsecond),
						float64(c.LockCycles)/1e9, float64(steals)/float64(c.Ops)*1000,
						float64(c.Allocs)/float64(c.Ops)*1000, c.GCPause.Round(10*time.Microsecond))
					em.add("sched", p.Name, w, nil, map[string]float64{
						"ops": float64(c.Ops), "wall_ns": float64(c.Wall),
						"mops":          float64(c.Ops) / c.Wall.Seconds() / 1e6,
						"mutex_wait_ns": float64(c.MutexWait), "lock_gcyc": float64(c.LockCycles) / 1e9,
						"steals_per_kop": float64(steals) / float64(c.Ops) * 1000,
						"allocs_per_kop": float64(c.Allocs) / float64(c.Ops) * 1000,
						"gc_pause_ns":    float64(c.GCPause),
					})
				}
			})
		}
	}

	if *modeFlag == "all" || *modeFlag == "throttle" {
		if *modeFlag == "all" {
			em.printf("\n")
		}
		em.printf("throttle admission window (shared contended window)\n")
		em.printf("%-8s %8s %8s %12s %12s %10s %14s %20s %10s %11s %10s\n",
			"impl", "workers", "window", "ops", "wall", "Mops/s", "mutex-wait", "throttle-lock-Gcyc", "parks", "allocs/kop", "gc-pause")
		for _, w := range workers {
			withGOMAXPROCS(w, func() {
				window := *windowFlag
				if window <= 0 {
					window = w
				}
				for _, kind := range []throttle.Kind{throttle.KindLocked, throttle.KindSharded} {
					harness.ThrottleBench(kind, w, *throttleOpsFlag/10, window)
					runtime.GC()
					c, parks := harness.ThrottleBench(kind, w, *throttleOpsFlag, window)
					em.printf("%-8s %8d %8d %12d %12s %10.2f %14s %20.3f %10d %11.1f %10s\n",
						kind, w, window, c.Ops, c.Wall.Round(time.Millisecond),
						float64(c.Ops)/c.Wall.Seconds()/1e6, c.MutexWait.Round(10*time.Microsecond),
						float64(c.LockCycles)/1e9, parks, float64(c.Allocs)/float64(c.Ops)*1000,
						c.GCPause.Round(10*time.Microsecond))
					em.add("throttle", kind.String(), w, map[string]int64{"window": int64(window)}, map[string]float64{
						"ops": float64(c.Ops), "wall_ns": float64(c.Wall),
						"mops":          float64(c.Ops) / c.Wall.Seconds() / 1e6,
						"mutex_wait_ns": float64(c.MutexWait), "lock_gcyc": float64(c.LockCycles) / 1e9,
						"parks":          float64(parks),
						"allocs_per_kop": float64(c.Allocs) / float64(c.Ops) * 1000,
						"gc_pause_ns":    float64(c.GCPause),
					})
				}
			})
		}
	}

	if *modeFlag == "all" || *modeFlag == "replay" {
		if *modeFlag == "all" {
			em.printf("\n")
		}
		iters, blocks := *replayItersFlag, *replayBlocksFlag
		em.printf("record-and-replay taskgraph cache (Gauss-Seidel wavefront sweep, empty bodies)\n")
		em.printf("%-14s %8s %10s %8s %12s %12s %14s %11s %10s %9s\n",
			"variant", "workers", "tiles/it", "iters", "wall", "us/iter", "mutex-wait", "allocs/kop", "gc-pause", "overhead")
		variants := []harness.ReplayVariant{harness.ReplayNestWeak, harness.ReplayLiveGraph, harness.ReplayFrozen}
		for _, w := range workers {
			withGOMAXPROCS(w, func() {
				var liveGraphPerIter float64
				for _, v := range variants {
					harness.ReplayOverheadBench(v, w, blocks, iters/10+1) // warm-up
					runtime.GC()
					c, tiles := harness.ReplayOverheadBench(v, w, blocks, iters)
					perIter := float64(c.Wall.Microseconds()) / float64(iters)
					cut := "1.00x"
					overhead := 1.0
					switch v {
					case harness.ReplayLiveGraph:
						liveGraphPerIter = perIter
					case harness.ReplayFrozen:
						if perIter > 0 && liveGraphPerIter > 0 {
							// The acceptance metric: live-engine sweeps cost this
							// many times the replayed sweeps' overhead.
							overhead = liveGraphPerIter / perIter
							cut = fmt.Sprintf("%.2fx", overhead)
						}
					default:
						cut = "-"
					}
					em.printf("%-14s %8d %10d %8d %12s %12.1f %14s %11.1f %10s %9s\n",
						v, w, tiles, iters, c.Wall.Round(time.Millisecond), perIter,
						c.MutexWait.Round(10*time.Microsecond), float64(c.Allocs)/float64(c.Ops)*1000,
						c.GCPause.Round(10*time.Microsecond), cut)
					em.add("replay", v.String(), w,
						map[string]int64{"tiles_per_iter": int64(tiles), "iters": int64(iters)},
						map[string]float64{
							"wall_ns": float64(c.Wall), "us_per_iter": perIter,
							"mutex_wait_ns":  float64(c.MutexWait),
							"allocs_per_kop": float64(c.Allocs) / float64(c.Ops) * 1000,
							"gc_pause_ns":    float64(c.GCPause), "overhead_x": overhead,
						})
				}
			})
		}
	}

	if *modeFlag == "all" || *modeFlag == "ws" {
		if *modeFlag == "all" {
			em.printf("\n")
		}
		iters, n := *wsItersFlag, *wsRangeFlag
		em.printf("worksharing chunk distribution (chained fine-grain loop regions)\n")
		em.printf("%-8s %8s %7s %10s %8s %12s %12s %11s %12s %7s %9s\n",
			"impl", "workers", "grain", "chunks/it", "iters", "wall", "us/iter", "allocs/kop", "helper-chks", "idle", "speedup")
		kinds := []struct {
			name string
			kind core.WorksharingKind
		}{
			{"expand", core.WorksharingExpand},
			{"chunked", core.WorksharingChunked},
		}
		for _, w := range workers {
			withGOMAXPROCS(w, func() {
				for _, grain := range wsGrains {
					var expandWall time.Duration
					for _, r := range kinds {
						harness.WSChunkBench(r.kind, w, iters/10+1, grain, n) // warm-up
						runtime.GC()
						res := harness.WSChunkBench(r.kind, w, iters, grain, n)
						speedup := "-"
						ratio := 1.0
						if r.kind == core.WorksharingExpand {
							expandWall = res.Wall
						} else if res.Wall > 0 && expandWall > 0 {
							// The acceptance metric: the per-chunk-task expansion
							// costs this many times the worksharing region.
							ratio = float64(expandWall) / float64(res.Wall)
							speedup = fmt.Sprintf("%.2fx", ratio)
						}
						em.printf("%-8s %8d %7d %10d %8d %12s %12.1f %11.1f %12d %6.1f%% %9s\n",
							r.name, w, grain, res.Chunks/int64(iters), iters, res.Wall.Round(time.Millisecond),
							float64(res.Wall.Microseconds())/float64(iters),
							float64(res.Allocs)/float64(res.Chunks)*1000, res.HelperChunks, res.Idle*100, speedup)
						em.add("ws", r.name, w,
							map[string]int64{"grain": grain, "iters": int64(iters)},
							map[string]float64{
								"wall_ns":           float64(res.Wall),
								"us_per_iter":       float64(res.Wall.Microseconds()) / float64(iters),
								"chunks_per_iter":   float64(res.Chunks / int64(iters)),
								"allocs_per_kchunk": float64(res.Allocs) / float64(res.Chunks) * 1000,
								"helper_chunks":     float64(res.HelperChunks),
								"idle_pct":          res.Idle * 100, "speedup_x": ratio,
							})
					}
				}
			})
		}
	}

	if *modeFlag == "all" || *modeFlag == "wait" {
		if *modeFlag == "all" {
			em.printf("\n")
		}
		reps, fan := *waitRepsFlag, *waitFanFlag
		em.printf("taskwait blocking strategy (nested parents over spinning leaves)\n")
		em.printf("%-13s %8s %10s %12s %10s %10s %10s %11s %7s\n",
			"impl", "workers", "waits", "wall", "us/wait", "parks", "handoffs", "steal-res", "idle")
		kinds := []struct {
			name string
			kind core.TaskwaitKind
		}{
			{"parking", core.TaskwaitParking},
			{"continuation", core.TaskwaitContinuation},
		}
		for _, w := range workers {
			withGOMAXPROCS(w, func() {
				for _, r := range kinds {
					harness.WaitBench(r.kind, w, reps/10+1, fan) // warm-up
					runtime.GC()
					res := harness.WaitBench(r.kind, w, reps, fan)
					em.printf("%-13s %8d %10d %12s %10.2f %10d %10d %11d %6.1f%%\n",
						r.name, w, res.Waits, res.Wall.Round(time.Millisecond),
						float64(res.Wall.Microseconds())/float64(res.Waits),
						res.Stats.Parks, res.Stats.Handoffs, res.Stats.StealResumes, res.Idle*100)
					em.add("wait", r.name, w,
						map[string]int64{"reps": int64(reps), "fan": int64(fan)},
						map[string]float64{
							"wall_ns": float64(res.Wall), "waits": float64(res.Waits),
							"us_per_wait":   float64(res.Wall.Microseconds()) / float64(res.Waits),
							"parks":         float64(res.Stats.Parks),
							"handoffs":      float64(res.Stats.Handoffs),
							"steal_resumes": float64(res.Stats.StealResumes),
							"idle_pct":      res.Idle * 100,
						})
				}
			})
		}
	}

	if *modeFlag == "all" || *modeFlag == "locality" {
		if *modeFlag == "all" {
			em.printf("\n")
		}
		ops, spin := *localityOpsFlag, *localitySpinFlag
		em.printf("steal locality (per-group work piles over a two-domain topology)\n")
		em.printf("%-6s %8s %10s %12s %10s %11s %8s %8s %8s %7s\n",
			"topo", "workers", "ops", "wall", "Mops/s", "steals/kop", "sib%", "dom%", "rem%", "cross%")
		for _, w := range workers {
			withGOMAXPROCS(w, func() {
				for _, tp := range harness.LocalityTopologies {
					harness.LocalityBench(tp.Topo, w, ops/10+1, spin) // warm-up
					runtime.GC()
					res := harness.LocalityBench(tp.Topo, w, ops, spin)
					pct := func(lvl int) float64 {
						if res.Steals == 0 {
							return 0
						}
						return 100 * float64(res.StealLevels[lvl]) / float64(res.Steals)
					}
					em.printf("%-6s %8d %10d %12s %10.2f %11.1f %7.1f%% %7.1f%% %7.1f%% %6.1f%%\n",
						tp.Name, w, res.Ops, res.Wall.Round(time.Millisecond),
						float64(res.Ops)/1e6/res.Wall.Seconds(),
						1000*float64(res.Steals)/float64(res.Ops),
						pct(sched.LevelSibling), pct(sched.LevelDomain), pct(sched.LevelRemote),
						res.CrossRate*100)
					em.add("locality", tp.Name, w,
						map[string]int64{"ops": int64(ops), "spin": int64(spin)},
						map[string]float64{
							"wall_ns": float64(res.Wall), "ops": float64(res.Ops),
							"mops":           float64(res.Ops) / 1e6 / res.Wall.Seconds(),
							"steals_per_kop": 1000 * float64(res.Steals) / float64(res.Ops),
							"sib_pct":        pct(sched.LevelSibling),
							"dom_pct":        pct(sched.LevelDomain),
							"rem_pct":        pct(sched.LevelRemote),
							"cross_pct":      res.CrossRate * 100,
						})
				}
			})
		}
	}

	if *modeFlag == "chaos" {
		// Robustness, not contention: every subsystem's failpoint group is
		// armed in turn under one fixed seeded schedule, and the stalls
		// column must read 0 on every row (the watchdog is live the whole
		// time). Runs at the widest configured width — chaos wants the
		// most concurrency the host offers.
		w := workers[len(workers)-1]
		for _, n := range workers {
			if n > w {
				w = n
			}
		}
		seed, rate, iters := *chaosSeedFlag, uint32(*chaosRateFlag), *chaosItersFlag
		em.printf("fault injection (mixed-construct workload, watchdog armed, seed %d, rate 1/%d)\n", seed, rate)
		em.printf("%-12s %8s %7s %10s %12s %12s %10s %8s\n",
			"sites", "workers", "iters", "tasks", "wall", "us/iter", "hits", "stalls")
		var refSum int64
		for i, g := range harness.ChaosGroups {
			withGOMAXPROCS(w, func() {
				harness.ChaosBench(g, seed, rate, w, iters/10+1, 12) // warm-up
				runtime.GC()
				res := harness.ChaosBench(g, seed, rate, w, iters, 12)
				if i == 0 {
					refSum = res.Checksum
				} else if res.Checksum != refSum {
					fmt.Fprintf(os.Stderr, "depbench: chaos row %q checksum %d != off row %d (replay with -chaos-seed=%d)\n",
						g.Name, res.Checksum, refSum, seed)
					os.Exit(1)
				}
				em.printf("%-12s %8d %7d %10d %12s %12.1f %10d %8d\n",
					g.Name, w, iters, res.Tasks, res.Wall.Round(time.Millisecond),
					float64(res.Wall.Microseconds())/float64(iters), res.Hits, res.Stalls)
				em.add("chaos", g.Name, w,
					map[string]int64{"seed": int64(seed), "rate": int64(rate), "iters": int64(iters)},
					map[string]float64{
						"wall_ns": float64(res.Wall), "tasks": float64(res.Tasks),
						"us_per_iter": float64(res.Wall.Microseconds()) / float64(iters),
						"hits":        float64(res.Hits), "stalls": float64(res.Stalls),
					})
				if res.Stalls != 0 {
					fmt.Fprintf(os.Stderr, "depbench: chaos row %q reported %d stalls, expected 0 (replay with -chaos-seed=%d)\n",
						g.Name, res.Stalls, seed)
					os.Exit(1)
				}
			})
		}
		em.printf("expectation: stalls = 0 on every row (failpoints delay, never drop; a stall is a runtime bug)\n")
	}

	if err := em.flush(); err != nil {
		fmt.Fprintf(os.Stderr, "depbench: %v\n", err)
		os.Exit(1)
	}
}
