// Command axpybench regenerates the Multiple-AXPY experiments of the paper:
// Table I (variant feature matrix), Figure 3 (performance and simulated L2
// miss ratio versus task size) and Figure 4 (strong scaling on virtual
// cores).
//
// Usage:
//
//	axpybench -table1
//	axpybench -fig 3 [-scale 1.0] [-cores N] [-reps 3]
//	axpybench -fig 4 [-scale 1.0]
//	axpybench -quick        # tiny smoke-test sizes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table I (variant feature matrix)")
	fig := flag.Int("fig", 0, "figure to regenerate: 3 or 4 (0 = all)")
	scale := flag.Float64("scale", 1, "problem-size multiplier (paper scale ≈ 64)")
	cores := flag.Int("cores", 0, "real-mode worker count (default GOMAXPROCS)")
	reps := flag.Int("reps", 3, "repetitions per point (best kept)")
	quick := flag.Bool("quick", false, "tiny sizes for a fast smoke run")
	flag.Parse()

	o := harness.Options{Scale: *scale, Cores: *cores, Reps: *reps, Quick: *quick}
	if *table1 {
		harness.Table1(os.Stdout)
		if *fig == 0 {
			return
		}
	}
	run := func(n int, f func(w *os.File, o harness.Options) error) {
		if err := f(os.Stdout, o); err != nil {
			fmt.Fprintf(os.Stderr, "axpybench: figure %d: %v\n", n, err)
			os.Exit(1)
		}
	}
	switch *fig {
	case 3:
		run(3, func(w *os.File, o harness.Options) error { return harness.Fig3(w, o) })
	case 4:
		run(4, func(w *os.File, o harness.Options) error { return harness.Fig4(w, o) })
	case 0:
		harness.Table1(os.Stdout)
		run(3, func(w *os.File, o harness.Options) error { return harness.Fig3(w, o) })
		run(4, func(w *os.File, o harness.Options) error { return harness.Fig4(w, o) })
	default:
		fmt.Fprintf(os.Stderr, "axpybench: unknown figure %d (want 3 or 4)\n", *fig)
		os.Exit(2)
	}
}
