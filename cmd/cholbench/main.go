// Command cholbench sweeps the blocked-Cholesky extension workload: the
// three nesting formulations (nest-weak, flat-depend, nest-depend) over a
// range of block sizes, in real mode (GFlop/s) and virtual mode (effective
// parallelism at a fixed core count). Dense linear algebra is the workload
// class the paper's introduction motivates via Kurzak et al. [3].
//
// Usage:
//
//	cholbench [-scale 1.0] [-quick] [-cores 16]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	quick := flag.Bool("quick", false, "tiny sizes for a fast smoke run")
	cores := flag.Int("cores", 16, "virtual cores for the parallelism sweep")
	flag.Parse()

	o := harness.Options{Scale: *scale, Quick: *quick}
	if err := harness.Cholesky(os.Stdout, o, *cores); err != nil {
		fmt.Fprintf(os.Stderr, "cholbench: %v\n", err)
		os.Exit(1)
	}
}
