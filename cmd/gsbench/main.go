// Command gsbench regenerates the Gauss-Seidel experiments of the paper:
// Figure 5 (performance versus tile size, real mode) and Figure 6
// (effective parallelism versus cores for 64×64 and 128×128 tiles, virtual
// mode so the sweep reaches the paper's 48 cores on any host).
//
// Usage:
//
//	gsbench -fig 5 [-scale 1.0] [-cores N] [-reps 3]
//	gsbench -fig 6 [-scale 1.0]
//	gsbench -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 5 or 6 (0 = both)")
	scale := flag.Float64("scale", 1, "problem-size multiplier (paper scale ≈ 27)")
	cores := flag.Int("cores", 0, "real-mode worker count (default GOMAXPROCS)")
	reps := flag.Int("reps", 3, "repetitions per point (best kept)")
	quick := flag.Bool("quick", false, "tiny sizes for a fast smoke run")
	flag.Parse()

	o := harness.Options{Scale: *scale, Cores: *cores, Reps: *reps, Quick: *quick}
	fail := func(n int, err error) {
		fmt.Fprintf(os.Stderr, "gsbench: figure %d: %v\n", n, err)
		os.Exit(1)
	}
	switch *fig {
	case 5:
		if err := harness.Fig5(os.Stdout, o); err != nil {
			fail(5, err)
		}
	case 6:
		if err := harness.Fig6(os.Stdout, o); err != nil {
			fail(6, err)
		}
	case 0:
		if err := harness.Fig5(os.Stdout, o); err != nil {
			fail(5, err)
		}
		if err := harness.Fig6(os.Stdout, o); err != nil {
			fail(6, err)
		}
	default:
		fmt.Fprintf(os.Stderr, "gsbench: unknown figure %d (want 5 or 6)\n", *fig)
		os.Exit(2)
	}
}
