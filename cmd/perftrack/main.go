// Command perftrack tracks the runtime's performance trajectory across
// commits. It runs the full depbench kernel matrix (deps, sched,
// throttle, replay, worksharing, taskwait) plus the cmd/reproduce
// workloads, collecting every entry under coefficient-of-variation
// validation (internal/perfstat.Collect: noisy entries are re-run, not
// averaged into garbage), and appends a per-commit record to a committed
// history file (BENCH_history.json).
//
// With -compare, the run is first gated against the last accepted record
// of the same class (quick vs full): each entry's new sample is tested
// against its recorded one with a Mann-Whitney U test plus a materiality
// floor (internal/perfstat.Compare). Any REGRESSED entry fails the run
// with exit status 1, the record is NOT appended, and a traced workload
// matched to the first regressed entry's family (worksharing for ws/*,
// nested weakwait for wait/*, flat dependencies for deps/sched/throttle/
// locality, the graph-region sweep otherwise) is re-run and classified
// against the detrimental execution patterns of Tuft et al.
// (internal/trace.DetectPatterns) so the failure comes with a diagnosis
// from the regressed machinery, not just a number.
//
// -selftest-gate proves the gate and the detector on synthetic inputs
// (a regression must fire, an identical sample must not; a serialized
// trace must classify, a healthy one must not) and exits; CI runs it so
// the machinery guarding the numbers is itself guarded.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/perfstat"
	"repro/internal/trace"
)

func main() {
	var (
		history  = flag.String("history", "BENCH_history.json", "trajectory history file to gate against and append to")
		workers  = flag.String("workers", "1,2,4", "comma-separated worker counts for the kernel matrix")
		quick    = flag.Bool("quick", false, "reduced-op matrix for smoke runs (never compared against full records)")
		reps     = flag.Int("reps", 5, "initial measurement repetitions per entry")
		maxCV    = flag.Float64("maxcv", 0.10, "coefficient-of-variation ceiling; noisier entries are re-run")
		alpha    = flag.Float64("alpha", 0.05, "significance level for the regression gate")
		minDelta = flag.Float64("min-delta", 0.10, "materiality floor for the gate (relative slowdown)")
		compare  = flag.Bool("compare", false, "gate against the last comparable record; exit 1 on regression")
		noAppend = flag.Bool("no-append", false, "collect and compare only; do not append to the history")
		commit   = flag.String("commit", "", "commit id for the record (default: git rev-parse --short HEAD)")
		selftest = flag.Bool("selftest-gate", false, "verify gate and pattern detector on synthetic inputs, then exit")
	)
	flag.Parse()

	if *selftest {
		os.Exit(selftestGate(perfstat.GatePolicy{Alpha: *alpha, MinDelta: *minDelta}))
	}

	// Same measurement hygiene as cmd/depbench: full mutex contention
	// sampling, and a high GC target so allocation-heavy kernels measure
	// the runtime, not the collector.
	runtime.SetMutexProfileFraction(1)
	debug.SetGCPercent(1000)

	widths, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perftrack:", err)
		os.Exit(2)
	}

	rec := collect(widths, *quick, perfstat.CollectOptions{Reps: *reps, MaxCV: *maxCV}, *commit)

	if *compare {
		if !gate(*history, rec, perfstat.GatePolicy{Alpha: *alpha, MinDelta: *minDelta}) {
			os.Exit(1)
		}
	}
	if *noAppend {
		return
	}
	if err := perfstat.AppendHistory(*history, rec); err != nil {
		fmt.Fprintln(os.Stderr, "perftrack: append:", err)
		os.Exit(2)
	}
	fmt.Printf("appended record %s (%d entries) to %s\n", rec.Commit, len(rec.Entries), *history)
}

// parseWorkers parses the -workers CSV.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		out = append(out, w)
	}
	sort.Ints(out)
	return out, nil
}

// collect runs every matrix entry under CV validation and builds the
// trajectory record.
func collect(widths []int, quick bool, opts perfstat.CollectOptions, commit string) perfstat.Record {
	entries := harness.PerfEntries(harness.PerfMatrix{Workers: widths, Quick: quick})
	rec := perfstat.Record{
		Commit:   commitID(commit),
		Time:     time.Now().UTC().Format(time.RFC3339),
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
		Quick:    quick,
	}
	fmt.Printf("perftrack: %d entries, %d reps each (max CV %.0f%%), commit %s\n",
		len(entries), opts.Reps, opts.MaxCV*100, rec.Commit)
	tb := metrics.NewTable("perf trajectory collection",
		"entry", "unit", "mean", "cv", "reruns", "stable")
	for _, e := range entries {
		e.Run() // warm-up pass: fill pools, fault pages, settle the JIT-less world
		runtime.GC()
		s := perfstat.Collect(e.Run, opts)
		rec.Entries = append(rec.Entries, perfstat.HistoryEntry{
			Name: e.Name, Unit: e.Unit, Values: s.Values,
			Mean: s.Mean(), CV: s.CV, Reruns: s.Reruns, Stable: s.Stable,
		})
		stable := "yes"
		if !s.Stable {
			stable = "NO"
		}
		tb.Add(e.Name, e.Unit, fmt.Sprintf("%.1f", s.Mean()),
			fmt.Sprintf("%.1f%%", s.CV*100), fmt.Sprint(s.Reruns), stable)
	}
	fmt.Print(tb.String())
	return rec
}

// commitID resolves the record's commit id.
func commitID(explicit string) string {
	if explicit != "" {
		return explicit
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// gate compares rec against the last comparable history record. Returns
// false (and prints a trace diagnosis) when any entry regressed.
func gate(path string, rec perfstat.Record, policy perfstat.GatePolicy) bool {
	recs, err := perfstat.LoadHistory(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perftrack: history:", err)
		return false
	}
	base := perfstat.LastComparable(recs, rec.Quick)
	if base == nil {
		fmt.Printf("no comparable record in %s (quick=%v); gate skipped\n", path, rec.Quick)
		return true
	}
	fmt.Printf("gate: comparing against %s (%s)\n", base.Commit, base.Time)
	tb := metrics.NewTable("regression gate", "entry", "old", "new", "verdict")
	var regressed []string
	for _, e := range rec.Entries {
		old, found := base.Entry(e.Name)
		if !found {
			tb.Add(e.Name, "-", fmt.Sprintf("%.1f %s", e.Mean, e.Unit), "n/a (new entry)")
			continue
		}
		c := perfstat.Compare(old.Values, e.Values, policy)
		tb.Add(e.Name,
			fmt.Sprintf("%.1f %s", c.OldMean, e.Unit),
			fmt.Sprintf("%.1f %s", c.NewMean, e.Unit),
			c.String())
		if c.Outcome == perfstat.Regressed {
			regressed = append(regressed, e.Name)
		}
	}
	fmt.Print(tb.String())
	if len(regressed) == 0 {
		fmt.Println("gate: clean")
		return true
	}
	fmt.Printf("gate: %d entries REGRESSED: %s\n", len(regressed), strings.Join(regressed, ", "))
	diagnose(rec, regressed[0])
	return false
}

// diagnose reruns a traced workload matched to the first regressed
// entry's family and classifies it against the detrimental-pattern
// taxonomy so the gate failure carries a cause from the machinery that
// actually regressed.
func diagnose(rec perfstat.Record, entry string) {
	cores := rec.MaxProcs
	if cores < 2 {
		cores = 2
	}
	if _, err := harness.Diagnose(os.Stdout, entry, cores, rec.Quick); err != nil {
		fmt.Fprintln(os.Stderr, "perftrack: diagnosis trace failed:", err)
	}
}

// selftestGate proves the gate and the detector end to end on synthetic
// inputs: the machinery must produce BOTH verdicts on demand.
func selftestGate(policy perfstat.GatePolicy) int {
	ok := true
	check := func(name string, pass bool, detail string) {
		verdict := "ok"
		if !pass {
			verdict = "FAIL"
			ok = false
		}
		fmt.Printf("selftest %-28s %-4s %s\n", name, verdict, detail)
	}

	// Gate: a clear 2x slowdown must gate; identical samples must not;
	// a clear speedup must report improved without gating.
	fast := []float64{100, 101, 99, 100, 102, 98}
	slow := []float64{200, 202, 198, 201, 199, 200}
	c := perfstat.Compare(fast, slow, policy)
	check("gate/regression-fires", c.Outcome == perfstat.Regressed, c.String())
	c = perfstat.Compare(fast, fast, policy)
	check("gate/identical-passes", c.Outcome == perfstat.Unchanged, c.String())
	c = perfstat.Compare(slow, fast, policy)
	check("gate/improvement-passes", c.Outcome == perfstat.Improved, c.String())

	// Detector: a serialized-creation trace must classify, a healthy
	// trace must stay clean.
	serial := trace.New(4)
	k := serial.KindID("task")
	serial.Record(0, k, 0, 50)
	for w := 0; w < 4; w++ {
		serial.Record(w, k, 50, 100)
	}
	fs := serial.DetectPatterns(100)
	found := false
	for _, f := range fs {
		if f.Pattern == "serialized-creation" {
			found = true
		}
	}
	check("detector/serialized-fires", found, fmt.Sprintf("%d findings", len(fs)))

	healthy := trace.New(4)
	for w := 0; w < 4; w++ {
		healthy.Record(w, k, 0, 100)
	}
	fs = healthy.DetectPatterns(100)
	check("detector/healthy-clean", len(fs) == 0, fmt.Sprintf("%d findings", len(fs)))

	if !ok {
		return 1
	}
	fmt.Println("selftest: gate and detector verified")
	return 0
}
