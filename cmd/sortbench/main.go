// Command sortbench regenerates Figure 7: the execution timeline of a
// quicksort followed by a prefix sum, comparing weak dependencies +
// weakwait against regular dependencies. It prints an ASCII timeline per
// variant (one row per worker, one glyph per task kind) and the quantified
// overlap between the two algorithm phases.
//
// With -chrome or -prv it additionally writes one trace file per variant
// for external viewers (chrome://tracing / Perfetto, or Paraver).
//
// Usage:
//
//	sortbench [-scale 1.0] [-quick] [-chrome prefix] [-prv prefix]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
	"repro/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	quick := flag.Bool("quick", false, "tiny sizes for a fast smoke run")
	chrome := flag.String("chrome", "", "write Chrome trace JSON to <prefix>-<variant>.json")
	prv := flag.String("prv", "", "write Paraver-like traces to <prefix>-<variant>.prv")
	flag.Parse()

	o := harness.Options{Scale: *scale, Quick: *quick}
	if err := harness.Fig7(os.Stdout, o); err != nil {
		fail(err)
	}
	if *chrome != "" {
		if err := exportTraces(o, *chrome, ".json", (*trace.Tracer).WriteChrome); err != nil {
			fail(err)
		}
	}
	if *prv != "" {
		if err := exportTraces(o, *prv, ".prv", (*trace.Tracer).WritePRV); err != nil {
			fail(err)
		}
	}
}

func exportTraces(o harness.Options, prefix, ext string,
	write func(*trace.Tracer, io.Writer) error) error {
	return harness.ExportFig7(o, func(variant string, tr *trace.Tracer) error {
		name := fmt.Sprintf("%s-%s%s", prefix, variant, ext)
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := write(tr, f); err != nil {
			f.Close()
			return err
		}
		fmt.Printf("wrote %s\n", name)
		return f.Close()
	})
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
	os.Exit(1)
}
