package nanos

import "repro/internal/core"

// Worksharing vocabulary, re-exported so user code only imports this
// package. The construct itself is the TaskContext.Worksharing method (or
// the free Worksharing function below, for symmetry with Taskloop).
type (
	// WorksharingSpec describes a Worksharing invocation: the same shape
	// as TaskloopSpec, but executed as ONE dependency-carrying task whose
	// grain-sized chunks self-schedule across idle workers ("Worksharing
	// Tasks", Maroñas et al.). Under the default chunked strategy the
	// Deps/Cost/Flops callbacks are invoked once with the whole [Lo, Hi)
	// range — the union the single task registers; under the expand
	// reference they are invoked per chunk, exactly like Taskloop.
	WorksharingSpec = core.WorksharingSpec
	// WorksharingKind selects the Worksharing execution strategy
	// (Config.WorksharingImpl).
	WorksharingKind = core.WorksharingKind
	// WsStats exposes the worksharing counters (Runtime.WsStats): regions
	// executed chunk-distributed, chunks executed, helper chunks, and
	// invitations announced.
	WsStats = core.WsStats
)

// Worksharing strategies for Config.WorksharingImpl. Both produce
// identical final state on programs whose depend entries cover their
// accesses (the differential tests in internal/core prove it); selecting
// one explicitly is for ablations and A/B comparisons.
const (
	// WorksharingAuto picks the chunk-distributed strategy in real mode
	// (virtual mode runs the chunks serially inside the single task).
	WorksharingAuto = core.WorksharingAuto
	// WorksharingExpand is the per-chunk-task reference: the shape Taskloop
	// submits, kept as the differential baseline. At fine grains it pays
	// one full task lifecycle per chunk — the overhead the chunked strategy
	// amortizes.
	WorksharingExpand = core.WorksharingExpand
	// WorksharingChunked is the worksharing strategy: one task carrying the
	// union depend entries; its body's chunks are claimed from a shared
	// atomic cursor by the owner and by idle workers invited through the
	// sharded ready pools, and a single completion countdown releases the
	// task exactly once. Inside a Graph region the whole loop records and
	// replays as a single node.
	WorksharingChunked = core.WorksharingChunked
)

// Worksharing submits spec's iteration space [Lo, Hi) as a worksharing
// task and returns the number of grain-sized chunks. Exactly one task
// registers the union depend entries through the engine (one node, one
// throttle credit, one replay fingerprint); when its body starts, the
// chunks are self-scheduled across the worker fleet against a shared
// atomic cursor, so irregular chunk costs balance without per-chunk tasks.
// Like Taskloop it does not wait: the region synchronizes through its
// depend entries, a Taskwait on the submitter, or the enclosing task's
// completion. Chunk bodies may run concurrently and must not block in
// Taskwait or Taskgroup (the OpenMP worksharing restriction).
//
// Use Worksharing where Taskloop's per-chunk tasks are finer than the
// runtime's per-task cost; keep Taskloop where individual chunks need
// distinct depend entries that downstream tasks consume at chunk
// granularity (the union entries serialize against everything the whole
// range touches).
func Worksharing(tc *TaskContext, spec WorksharingSpec) int {
	return tc.Worksharing(spec)
}
