package nanos

// TaskloopSpec describes a Taskloop invocation: the iteration space
// [Lo, Hi) is split into chunks of at most Grain iterations and one task is
// submitted per chunk — the OpenMP taskloop construct, extended with
// per-chunk depend entries so chunked loops compose with the dependency
// system (the paper's listing 5 is exactly this shape, written by hand).
//
// For iteration spaces whose chunks are finer than the runtime's per-task
// cost, see Worksharing: the same spec shape executed as one
// dependency-carrying task with chunk-distributed body.
type TaskloopSpec struct {
	// Label names the chunk tasks (diagnostics, trace kind).
	Label string
	// Lo, Hi bound the iteration space [Lo, Hi).
	Lo, Hi int64
	// Grain is the maximum iterations per chunk. Required (> 0).
	Grain int64
	// Deps, when non-nil, returns the depend entries of the chunk covering
	// [lo, hi).
	Deps func(lo, hi int64) []Dep
	// Cost, when non-nil, returns a chunk's virtual-mode cost. When nil,
	// each chunk's cost defaults to its length hi-lo — one cost unit per
	// iteration, the natural unit for uniform loops. Real mode ignores
	// Cost entirely (tasks take as long as they take).
	Cost func(lo, hi int64) int64
	// Flops, when non-nil, returns a chunk's flop count for the runtime's
	// accounting.
	Flops func(lo, hi int64) int64
	// Priority applies to every chunk task (Priority policy).
	Priority int64
	// Final marks every chunk task final (its subtasks run inline).
	Final bool
	// Body executes one chunk over [lo, hi). Required.
	Body func(tc *TaskContext, lo, hi int64)
}

// Taskloop submits one task per grain-sized chunk of spec's iteration
// space, in ascending order, and returns the number of tasks submitted. It
// does not wait: like any Submit, the chunks synchronize through their
// depend entries or through the enclosing task's completion. A nil Deps
// yields independent chunks (the plain OpenMP taskloop); with Deps the
// chunks participate in the full dependency system, including weak entries
// and cross-nesting-level release.
func Taskloop(tc *TaskContext, spec TaskloopSpec) int {
	if spec.Grain <= 0 {
		panic("nanos: Taskloop requires Grain > 0")
	}
	if spec.Body == nil {
		panic("nanos: Taskloop requires a Body")
	}
	label := spec.Label
	if label == "" {
		label = "taskloop"
	}
	n := 0
	// One TaskSpec reused across every chunk: Submit copies the spec by
	// value into the task, so rebuilding it per chunk would only feed the
	// allocator. The chunk closure captures the body and its two bounds —
	// not the whole TaskloopSpec — keeping the per-chunk garbage to the
	// closure itself even in the reference memory mode.
	body := spec.Body
	ts := TaskSpec{
		Label:    label,
		Kind:     label,
		Priority: spec.Priority,
		Final:    spec.Final,
	}
	for lo := spec.Lo; lo < spec.Hi; lo += spec.Grain {
		hi := lo + spec.Grain
		if hi > spec.Hi {
			hi = spec.Hi
		}
		lo, hi := lo, hi
		ts.Body = func(tc *TaskContext) { body(tc, lo, hi) }
		if spec.Deps != nil {
			ts.Deps = spec.Deps(lo, hi)
		} else {
			ts.Deps = nil
		}
		if spec.Cost != nil {
			ts.Cost = spec.Cost(lo, hi)
		} else {
			ts.Cost = hi - lo
		}
		if spec.Flops != nil {
			ts.Flops = spec.Flops(lo, hi)
		}
		tc.Submit(ts)
		n++
	}
	return n
}
