# Build/test entry points; CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make ci` locally means a green pipeline.
# `make help` lists the targets.

GO ?= go

.PHONY: all help build vet test race bench-short sched-smoke throttle-smoke mem-smoke replay-smoke wait-smoke ws-smoke topo-smoke chaos-smoke perftrack-smoke depbench perftrack ci

all: build

help:
	@echo "Targets:"
	@echo "  build          go build ./..."
	@echo "  vet            go vet ./..."
	@echo "  test           full test suite"
	@echo "  race           race detector pass (short mode)"
	@echo "  bench-short    every benchmark once (benchmark-code smoke)"
	@echo "  sched-smoke    ready-pool contention matrix (w=1/4/8) + w=1 parity guard"
	@echo "  throttle-smoke throttle-window contention matrix (impl x window x w) + w=1 parity guard"
	@echo "  mem-smoke      memory-pool gates: >=5x alloc cut, pooled-vs-reference differentials,"
	@echo "                 leak accounting, w=1 parity guard, SubmitDisjoint bench smoke"
	@echo "  replay-smoke   record-and-replay gates: replay-vs-live differential over random"
	@echo "                 iterative programs, shape-flip invalidation fallback, countdown-node"
	@echo "                 leak accounting, w=1 parity guard (replay <=1.5x live), workload"
	@echo "                 validation (GS graph variant + heat vs sequential reference)"
	@echo "  wait-smoke     taskwait gates: parking-vs-continuation differential over random"
	@echo "                 nested programs, zero-parks continuation check (w=2/4/8), exact"
	@echo "                 w=1 stats, edge cases, w=1 parity guard (continuation <=1.5x"
	@echo "                 parking), plus the depbench nested-taskwait table"
	@echo "  ws-smoke       worksharing gates: chunked-vs-expand differential over randomized"
	@echo "                 grains and skewed chunk costs, single-replay-node check, w=1 parity"
	@echo "                 guard (chunked <=1.5x expand), chunk-descriptor alloc gate, workload"
	@echo "                 validation (axpy + GS wavefront), plus the depbench ws table"
	@echo "  topo-smoke     steal-topology gates: resolved-tree shape, exact nearest-first"
	@echo "                 steal-distance walk, nearest-first announce spread, affinity batch"
	@echo "                 routing, w=1 parity guard (tree <=1.5x flat), the cross-group"
	@echo "                 steal-rate drop (tree strictly below flat at w=4/8, histogram"
	@echo "                 mostly sibling-level), plus the depbench locality table"
	@echo "  chaos-smoke    robustness gates (-race): seeded chaos soak (failpoints on every"
	@echo "                 lock-free edge, checksum + drain + zero-stall oracles, failing"
	@echo "                 seeds print a -seed replay line), watchdog selftest (induced"
	@echo "                 lost wakeup must be named, healthy run must stay silent),"
	@echo "                 panic-safe drain suite, chaos unit tests, and the depbench"
	@echo "                 chaos table with its 0-stalls expectation"
	@echo "  perftrack-smoke perf-trajectory gates: perfstat + pattern-detector unit tests,"
	@echo "                 the synthetic gate/detector selftest (both verdicts), and a"
	@echo "                 reduced-op collect + append + compare cycle against a scratch"
	@echo "                 history (wide materiality floor so host noise cannot flake CI)"
	@echo "  depbench       contention tables: deps engines (incl. pooled memory), sched pools,"
	@echo "                 throttle windows, replay cache, taskwait strategies, worksharing"
	@echo "                  chunks, steal locality (go run ./cmd/depbench; -mode deps|sched|"
	@echo "                  throttle|replay|wait|ws|locality|chaos selects one table, -workers/"
	@echo "                  -ops/-sched-ops/-throttle-ops/-window/-replay-iters/-wait-reps/"
	@echo "                  -ws-iters/-ws-grain/-locality-ops/-chaos-seed/-chaos-rate size the"
	@echo "                  sweeps; -json emits machine-readable rows instead of tables)"
	@echo "  perftrack      full perf-trajectory run: collect the depbench matrix + reproduce"
	@echo "                 workloads under CV validation, gate against the last committed"
	@echo "                 record, append to BENCH_history.json (go run ./cmd/perftrack)"
	@echo "  ci             build + vet + test + race + bench-short + sched/throttle/mem/replay/wait/ws/topo/chaos/perftrack smokes"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short-mode race pass: the stress suites trim their seed counts under
# -short so this stays CI-friendly.
race:
	$(GO) test -race -short ./...

# Quick benchmark smoke: every benchmark runs at least once (correctness
# of the benchmark code), without the full measurement sweeps.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Scheduler admission contention smoke: the pool matrix at w=1/4/8 plus
# the w=1 parity regression guard (the sharded pools' lock-free fast paths
# must stay at parity with the single-lock reference when uncontended).
sched-smoke:
	$(GO) test -run 'TestSchedW1Parity' -bench 'BenchmarkSchedContentionMatrix' -benchtime 1x ./internal/sched

# Throttle admission-window contention smoke: the window matrix
# (impl x window x w=1/4/8) plus the w=1 parity regression guard (the
# sharded window's credit-cache fast path must stay at parity with the
# mutex+cond reference when uncontended).
throttle-smoke:
	$(GO) test -run 'TestThrottleW1Parity' -bench 'BenchmarkThrottleContentionMatrix' -benchtime 1x ./internal/throttle

# Memory-pool smoke: the steady-state allocation gate (pooled must cut
# allocs/op >=5x vs the allocate-always reference), the pooled-vs-reference
# differentials and leak accounting at both the engine and runtime level,
# the w=1 parity guard (pooled free-list hops must stay at parity with
# plain allocation when uncontended), and one pass over the SubmitDisjoint
# benchmark's memory-mode matrix.
mem-smoke:
	$(GO) test -run 'TestMemPool' -bench 'BenchmarkSubmitDisjoint' -benchtime 1x ./internal/deps
	$(GO) test -run 'TestMemPool' ./internal/core

# Record-and-replay smoke: the replay-vs-live differential (identical
# final state and task counts over randomized iterative programs), the
# shape-flip invalidation fallback (no lost tasks, zero countdown nodes
# outstanding), the w=1 parity guard (a replayed sweep must not cost more
# than 1.5x the live engine when uncontended — in practice it is several
# times cheaper), and the graph-region workload validations.
replay-smoke:
	$(GO) test -run 'TestGraphReplayDifferential|TestGraphShapeFlipInvalidation|TestReplayW1Parity' ./internal/core
	$(GO) test -run 'TestHeatValidates|TestGSGraphValidates' ./internal/workloads

# Taskwait smoke: the parking-vs-continuation differential over randomized
# nested programs (identical checksums and exact w=1 blocking-wait counts),
# the zero-parks check (continuation mode must never park a worker at
# w=2/4/8 while the parking reference always does), the exact-stats and
# edge-case suites, the w=1 parity guard (continuation handoff must stay
# within 1.5x of the parking reference when uncontended), and one pass of
# the depbench nested-taskwait table.
wait-smoke:
	$(GO) test -run 'TestTaskwaitImplResolution|TestTaskwaitExactStats|TestTaskwaitZeroParksMultiWorker|TestTaskwaitEdgeCases|TestTaskwaitW1Parity' ./internal/core
	$(GO) run ./cmd/depbench -mode wait -workers 2,4,8 -wait-reps 60

# Worksharing smoke: the chunked-vs-expand differential (identical final
# state over randomized grains, widths, and skewed chunk costs), the
# single-replay-node composition check (a region records and replays as
# one graph node), the w=1 parity guard (the chunked body must stay within
# 1.5x of the per-chunk-task expansion when uncontended), the
# chunk-descriptor allocation gate (zero fresh descriptors in steady
# state, with leak accounting), the workload validations (axpy +
# Gauss-Seidel wavefront against their sequential references), and one
# pass of the depbench ws table.
ws-smoke:
	$(GO) test -run 'TestWorksharingBasic|TestWorksharingKindResolution|TestWorksharingDifferential|TestWorksharingW1Parity|TestWorksharingReplaySingleNode|TestWorksharingEdgeCases|TestMemPoolAllocGateWorksharing' ./internal/core
	$(GO) test -run 'TestAxpyWorksharingAllStrategies|TestGSWsWavefrontValidates' ./internal/workloads
	$(GO) run ./cmd/depbench -mode ws -workers 2,4 -ws-iters 40 -ws-grain 64,256

# Contention tables (deps: global vs sharded engine, plus the pooled
# memory mode; sched: single-lock vs
# sharded ready pools; throttle: mutex+cond vs sharded token-bucket
# window; replay: live engine vs frozen-graph replay per sweep; wait:
# parking vs continuation taskwait). See `go doc ./cmd/depbench` for the
# flags and columns.
depbench:
	$(GO) run ./cmd/depbench

# Steal-topology smoke: the resolved-tree shape checks, the exact
# nearest-first walk order on a frozen two-domain pool (sibling level
# exhausted before the domain, domain before remote, per-level counters
# exact), the nearest-first announce spread, affinity-hinted batch
# routing (cross-group hints divert to the hinted shard's inbox), the
# w=1 parity guard (the topology walk must not cost anything with no one
# to steal from), the locality acceptance gate (tree cross-group steal
# rate strictly below the flat reference at w=4/8 with a mostly
# sibling-level histogram), and one pass of the depbench locality table.
topo-smoke:
	$(GO) test -run 'TestTopologyResolve|TestStealDistanceDistribution|TestAnnounceNearestFirst|TestSubmitBatchAffinityRouting|TestTopologyW1Parity' ./internal/sched
	$(GO) test -run 'TestLocalityCrossGroupDrop' ./internal/harness
	$(GO) run ./cmd/depbench -mode locality -workers 4,8 -locality-ops 100000

# Robustness smoke: the chaos soak (short mode: >=12 seeded failpoint
# schedules x 3 fire rates over the mixed-construct workload, under the
# race detector, with checksum/drain/zero-stall oracles; failing seeds
# print a `-seed N` replay line), the combined chaos+panic soak, the
# watchdog selftest (a synthetic lost wakeup in a reference pool must be
# detected and named; a healthy nested/worksharing run at aggressive
# sampling must stay silent), the panic-safe drain suite (replayed graph
# regions, owner aborts, final tasks, worksharing owners, taskgroups,
# Run's re-panic-after-drain), the chaos registry unit tests, and one
# pass of the depbench chaos table (stalls column must read 0).
chaos-smoke:
	$(GO) test -race -short -run 'TestChaos|TestWatchdog|TestStallDetector|TestPanic|TestRunRepanicsAfterDrain' ./internal/core
	$(GO) test -race ./internal/chaos
	$(GO) test -race -short -run 'TestChaosGroupsCoverAllSites|TestChaosBenchRows' ./internal/harness
	$(GO) run ./cmd/depbench -mode chaos -workers 4 -chaos-iters 32

# Perf-trajectory smoke: the statistics layer's unit tests (CV collection,
# Welch/Mann-Whitney, gate verdicts both ways), the pattern detector's
# synthetic pass/fail suite, the perftrack selftest (a synthetic regression
# must gate, an identical sample must not; a serialized trace must
# classify, a healthy one must not), and one reduced-op collect + append +
# compare cycle against a scratch history. The compare step uses a wide
# materiality floor (-min-delta 3.0) because its job here is to exercise
# the plumbing — verdict correctness is proven by the selftest and unit
# tests, and a tight floor would flake on noisy CI hosts.
perftrack-smoke:
	$(GO) test ./internal/perfstat
	$(GO) test -run 'TestDetectPatterns|TestDetectSerializedCreation|TestDetectStarvedWorkers|TestDetectWaitHeavy|TestPatternReportRendering' ./internal/trace
	$(GO) run ./cmd/perftrack -selftest-gate
	rm -f /tmp/perftrack_smoke.json
	$(GO) run ./cmd/perftrack -quick -workers 1,2 -reps 3 -history /tmp/perftrack_smoke.json
	$(GO) run ./cmd/perftrack -quick -workers 1,2 -reps 3 -history /tmp/perftrack_smoke.json -compare -no-append -min-delta 3.0

# Full trajectory run: collect, gate against the last committed record,
# and append to BENCH_history.json (commit the result).
perftrack:
	$(GO) run ./cmd/perftrack -compare

ci: build vet test race bench-short sched-smoke throttle-smoke mem-smoke replay-smoke wait-smoke ws-smoke topo-smoke chaos-smoke perftrack-smoke
