# Build/test entry points; CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: all build vet test race bench-short sched-smoke depbench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short-mode race pass: the stress suites trim their seed counts under
# -short so this stays CI-friendly.
race:
	$(GO) test -race -short ./...

# Quick benchmark smoke: every benchmark runs at least once (correctness
# of the benchmark code), without the full measurement sweeps.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Scheduler admission contention smoke: the pool matrix at w=1/4/8 plus
# the w=1 parity regression guard (the sharded pools' lock-free fast paths
# must stay at parity with the single-lock reference when uncontended).
sched-smoke:
	$(GO) test -run 'TestSchedW1Parity' -bench 'BenchmarkSchedContentionMatrix' -benchtime 1x ./internal/sched

# Contention tables (deps: global vs sharded engine; sched: single-lock vs
# sharded ready pools).
depbench:
	$(GO) run ./cmd/depbench

ci: build vet test race bench-short sched-smoke
