# Build/test entry points; CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: all build vet test race bench-short depbench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short-mode race pass: the stress suites trim their seed counts under
# -short so this stays CI-friendly.
race:
	$(GO) test -race -short ./...

# Quick benchmark smoke: every benchmark runs at least once (correctness
# of the benchmark code), without the full measurement sweeps.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Dependency-engine contention table (global vs sharded engine).
depbench:
	$(GO) run ./cmd/depbench

ci: build vet test race bench-short
