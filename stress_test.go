package nanos_test

// Randomized real-concurrency stress tests through the public API: random
// nested task programs with weak/strong dependencies execute under actual
// goroutine parallelism, and every task verifies at run time that the
// values it reads are exactly what the sequential (pre-order) execution
// would produce. Run with -race for full effect.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	nanos "repro"
)

const stressUniverse = 64

// stressTask describes one task of a random program.
type stressTask struct {
	label    string
	weakWait bool
	weak     bool // cover access weak?
	cover    nanos.Interval
	reads    []nanos.Interval
	writes   []nanos.Interval
	children []*stressTask

	seq int
}

// buildStressProgram generates top-level tasks with nested children; leaf
// accesses stay within their parent's cover.
func buildStressProgram(rng *rand.Rand, depth int) []*stressTask {
	id := 0
	var gen func(cover nanos.Interval, depth int) *stressTask
	gen = func(cover nanos.Interval, depth int) *stressTask {
		id++
		t := &stressTask{
			label:    fmt.Sprintf("t%d", id),
			weakWait: rng.Intn(10) < 7,
			weak:     rng.Intn(10) < 7,
			cover:    cover,
		}
		kids := 1 + rng.Intn(3)
		for k := 0; k < kids; k++ {
			if cover.Len() < 2 {
				break
			}
			lo := cover.Lo + rng.Int63n(cover.Len()-1)
			hi := lo + 1 + rng.Int63n(cover.Hi-lo)
			sub := nanos.Iv(lo, hi)
			if depth > 1 && sub.Len() >= 4 && rng.Intn(3) == 0 {
				t.children = append(t.children, gen(sub, depth-1))
			} else {
				id++
				leaf := &stressTask{label: fmt.Sprintf("l%d", id)}
				if rng.Intn(2) == 0 {
					leaf.writes = []nanos.Interval{sub}
				} else {
					leaf.reads = []nanos.Interval{sub}
				}
				t.children = append(t.children, leaf)
			}
		}
		return t
	}
	n := 3 + rng.Intn(5)
	out := make([]*stressTask, 0, n)
	for i := 0; i < n; i++ {
		lo := rng.Int63n(stressUniverse - 10)
		ln := int64(6 + rng.Intn(18))
		hi := lo + ln
		if hi > stressUniverse {
			hi = stressUniverse
		}
		out = append(out, gen(nanos.Iv(lo, hi), depth))
	}
	return out
}

// reference assigns pre-order sequence numbers and computes expected reads.
func stressReference(tasks []*stressTask) (expect map[string]map[int64]int64, final []int64) {
	ref := make([]int64, stressUniverse)
	expect = make(map[string]map[int64]int64)
	seq := 0
	var walk func(ts []*stressTask)
	walk = func(ts []*stressTask) {
		for _, t := range ts {
			seq++
			t.seq = seq
			exp := make(map[int64]int64)
			for _, iv := range t.reads {
				for p := iv.Lo; p < iv.Hi; p++ {
					exp[p] = ref[p]
				}
			}
			for _, iv := range t.writes {
				for p := iv.Lo; p < iv.Hi; p++ {
					ref[p] = int64(t.seq)
				}
			}
			expect[t.label] = exp
			walk(t.children)
		}
	}
	walk(tasks)
	return expect, ref
}

// runStress executes the program on a real runtime and checks every read.
func runStress(t *testing.T, tasks []*stressTask, workers int) {
	expect, final := stressReference(tasks)
	rt := nanos.New(nanos.Config{Workers: workers})
	d := rt.NewData("x", stressUniverse, 8)
	data := make([]int64, stressUniverse)
	var mu sync.Mutex
	var violations []string

	var submit func(tc *nanos.TaskContext, st *stressTask)
	submit = func(tc *nanos.TaskContext, st *stressTask) {
		var deps []nanos.Dep
		if len(st.children) > 0 {
			if st.weak {
				deps = append(deps, nanos.DWeakInOut(d, st.cover))
			} else {
				deps = append(deps, nanos.DInOut(d, st.cover))
			}
		}
		for _, iv := range st.reads {
			deps = append(deps, nanos.DIn(d, iv))
		}
		for _, iv := range st.writes {
			deps = append(deps, nanos.DInOut(d, iv))
		}

		tc.Submit(nanos.TaskSpec{
			Label:    st.label,
			WeakWait: st.weakWait,
			Deps:     deps,
			Body: func(tc *nanos.TaskContext) {
				exp := expect[st.label]
				for _, iv := range st.reads {
					for p := iv.Lo; p < iv.Hi; p++ {
						// The dependency system must make this read safe
						// and sequentially consistent.
						if got := data[p]; got != exp[p] {
							mu.Lock()
							violations = append(violations,
								fmt.Sprintf("%s read [%d]=%d want %d", st.label, p, got, exp[p]))
							mu.Unlock()
						}
					}
				}
				for _, iv := range st.writes {
					for p := iv.Lo; p < iv.Hi; p++ {
						data[p] = int64(st.seq)
					}
				}
				for _, c := range st.children {
					submit(tc, c)
				}
			},
		})
	}

	rt.Run(func(tc *nanos.TaskContext) {
		for _, st := range tasks {
			submit(tc, st)
		}
	})

	if len(violations) > 0 {
		t.Fatalf("serialization violations: %v", violations[:min(4, len(violations))])
	}
	for p := range data {
		if data[p] != final[p] {
			t.Fatalf("final state [%d] = %d, want %d", p, data[p], final[p])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestStressRandomNestedPrograms: random nested weak/strong programs under
// real concurrency must be serializable to pre-order.
func TestStressRandomNestedPrograms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := buildStressProgram(rng, 2)
		runStress(t, prog, 1+rng.Intn(8))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Fatal(err)
	}
}

// TestStressDeepNesting: three levels of nesting with mixed modes.
func TestStressDeepNesting(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		prog := buildStressProgram(rng, 3)
		runStress(t, prog, 4)
		if t.Failed() {
			t.Fatalf("seed %d failed", seed)
		}
	}
}

// TestStressManyWorkers: oversubscription (more workers than cores) must
// not break ordering.
func TestStressManyWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	prog := buildStressProgram(rng, 2)
	runStress(t, prog, 32)
}

// TestStressSingleWorker: degenerate single-token execution.
func TestStressSingleWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	prog := buildStressProgram(rng, 2)
	runStress(t, prog, 1)
}

// TestStressWithThrottle: the lookahead window preserves correctness.
func TestStressWithThrottle(t *testing.T) {
	expectFew := func(workers, throttle int) {
		rng := rand.New(rand.NewSource(99))
		prog := buildStressProgram(rng, 2)
		expect, final := stressReference(prog)
		_ = expect
		_ = final
		rt := nanos.New(nanos.Config{Workers: workers, ThrottleOpenTasks: throttle})
		d := rt.NewData("x", stressUniverse, 8)
		data := make([]int64, stressUniverse)
		var submit func(tc *nanos.TaskContext, st *stressTask)
		submit = func(tc *nanos.TaskContext, st *stressTask) {
			var deps []nanos.Dep
			if len(st.children) > 0 {
				deps = append(deps, nanos.DWeakInOut(d, st.cover))
			}
			for _, iv := range st.reads {
				deps = append(deps, nanos.DIn(d, iv))
			}
			for _, iv := range st.writes {
				deps = append(deps, nanos.DInOut(d, iv))
			}
			tc.Submit(nanos.TaskSpec{Label: st.label, WeakWait: true, Deps: deps,
				Body: func(tc *nanos.TaskContext) {
					for _, iv := range st.writes {
						for p := iv.Lo; p < iv.Hi; p++ {
							data[p] = int64(st.seq)
						}
					}
					for _, c := range st.children {
						submit(tc, c)
					}
				}})
		}
		rt.Run(func(tc *nanos.TaskContext) {
			for _, st := range prog {
				submit(tc, st)
			}
		})
		for p := range data {
			if data[p] != final[p] {
				t.Fatalf("throttle=%d: final state [%d] = %d, want %d", throttle, p, data[p], final[p])
			}
		}
	}
	expectFew(4, 4)
	expectFew(2, 1)
}
