package nanos_test

// One benchmark per table/figure of the paper (§VIII), plus ablations of
// the design choices called out in DESIGN.md. Sizes are scaled so that
// `go test -bench=. -benchmem` completes in minutes on a laptop; the
// cmd/*bench tools run the full sweeps.
//
// Custom metrics: gflop/s (figures 3-5), miss-ratio (figure 3 bottom),
// eff-par (figure 6), overlap-frac (figure 7).

import (
	"fmt"
	"testing"

	nanos "repro"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// BenchmarkTable1VariantMatrix regenerates Table I (it is a feature matrix,
// not a measurement; the benchmark prints it once and measures nothing).
func BenchmarkTable1VariantMatrix(b *testing.B) {
	b.ReportAllocs()
	if b.N == 1 {
		harness.Table1(testWriter{b})
	}
	for i := 0; i < b.N; i++ {
		_ = workloads.AxpyVariants
	}
}

type testWriter struct{ b *testing.B }

func (w testWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// BenchmarkFig3AxpyTaskSize: AXPY GFlop/s per variant and task size (real
// mode, host cores). Figure 3 top; the bottom panel's miss ratio is
// reported as a secondary metric from a cache-simulated run.
func BenchmarkFig3AxpyTaskSize(b *testing.B) {
	b.ReportAllocs()
	const n = 1 << 20
	for _, ts := range []int64{4 << 10, 16 << 10, 64 << 10} {
		for _, v := range workloads.AxpyVariants {
			b.Run(fmt.Sprintf("ts=%dKi/%s", ts>>10, v), func(b *testing.B) {
				b.ReportAllocs()
				p := workloads.AxpyParams{N: n, Calls: 8, TaskSize: ts, Alpha: 1, Compute: true}
				var last workloads.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := workloads.RunAxpy(workloads.Mode{Workers: 0}, v, p)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.StopTimer()
				b.ReportMetric(last.GFlops(), "gflop/s")
				cache := nanos.DefaultL2Cache()
				cres, err := workloads.RunAxpy(workloads.Mode{Workers: 0, Cache: &cache}, v, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cres.MissRatio, "miss-ratio")
			})
		}
	}
}

// BenchmarkFig4AxpyScaling: AXPY strong scaling on virtual cores (4–48),
// leaf tasks of 14·2¹⁰ elements. Figure 4.
func BenchmarkFig4AxpyScaling(b *testing.B) {
	b.ReportAllocs()
	p := workloads.AxpyParams{N: 4 << 20, Calls: 8, TaskSize: 14 << 10, Alpha: 1, Compute: false}
	for _, cores := range []int{4, 16, 48} {
		for _, v := range workloads.AxpyVariants {
			b.Run(fmt.Sprintf("cores=%d/%s", cores, v), func(b *testing.B) {
				b.ReportAllocs()
				var last workloads.Result
				for i := 0; i < b.N; i++ {
					res, err := workloads.RunAxpy(workloads.Mode{Workers: cores, Virtual: true}, v, p)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				// In virtual mode GFlops is flops per cost unit — the
				// figure's y axis up to a constant.
				b.ReportMetric(last.GFlops(), "gflop/s")
				b.ReportMetric(last.EffectiveParallelism, "eff-par")
			})
		}
	}
}

// BenchmarkFig5GSTaskSize: Gauss-Seidel GFlop/s per variant and tile size
// (real mode). Figure 5.
func BenchmarkFig5GSTaskSize(b *testing.B) {
	b.ReportAllocs()
	for _, ts := range []int64{32, 64, 128} {
		for _, v := range workloads.GSVariants {
			b.Run(fmt.Sprintf("ts=%d/%s", ts, v), func(b *testing.B) {
				b.ReportAllocs()
				p := workloads.GSParams{N: 512, TS: ts, Iters: 6, Compute: true}
				var last workloads.Result
				for i := 0; i < b.N; i++ {
					res, err := workloads.RunGS(workloads.Mode{Workers: 0}, v, p)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.GFlops(), "gflop/s")
			})
		}
	}
}

// BenchmarkFig6GSScaling: Gauss-Seidel effective parallelism on virtual
// cores for 64×64 and 128×128 tiles. Figure 6.
func BenchmarkFig6GSScaling(b *testing.B) {
	b.ReportAllocs()
	for _, ts := range []int64{64, 128} {
		for _, cores := range []int{8, 24, 48} {
			for _, v := range workloads.GSVariants {
				b.Run(fmt.Sprintf("ts=%d/cores=%d/%s", ts, cores, v), func(b *testing.B) {
					b.ReportAllocs()
					p := workloads.GSParams{N: 1024, TS: ts, Iters: 6, Compute: false}
					var last workloads.Result
					for i := 0; i < b.N; i++ {
						res, err := workloads.RunGS(workloads.Mode{Workers: cores, Virtual: true}, v, p)
						if err != nil {
							b.Fatal(err)
						}
						last = res
					}
					b.ReportMetric(last.EffectiveParallelism, "eff-par")
				})
			}
		}
	}
}

// BenchmarkFig7SortPrefix: quicksort + prefix sum, reporting the fraction
// of time the two phases overlap (weak ≫ 0, regular = 0). Figure 7.
func BenchmarkFig7SortPrefix(b *testing.B) {
	b.ReportAllocs()
	p := workloads.SortParams{N: 1 << 16, TS: 1 << 9, Seed: 3}
	for _, v := range workloads.SortVariants {
		b.Run(string(v), func(b *testing.B) {
			b.ReportAllocs()
			var frac float64
			for i := 0; i < b.N; i++ {
				res, err := workloads.RunSortSum(
					workloads.Mode{Workers: 8, Virtual: true, Trace: true}, v, p)
				if err != nil {
					b.Fatal(err)
				}
				tr := res.Runtime.Tracer()
				var sortK, prefK []trace.Kind
				for k, name := range tr.Kinds() {
					switch name {
					case "quick_sort", "insertion_sort":
						sortK = append(sortK, trace.Kind(k))
					case "prefix_base", "prefix_sum", "accumulate":
						prefK = append(prefK, trace.Kind(k))
					}
				}
				frac = float64(tr.Overlap(sortK, prefK)) / float64(res.VirtualTime)
			}
			b.ReportMetric(frac, "overlap-frac")
		})
	}
}

// BenchmarkAblationHandoff isolates the direct successor hand-off policy
// (the locality mechanism behind Figure 3's miss ratios).
func BenchmarkAblationHandoff(b *testing.B) {
	b.ReportAllocs()
	p := workloads.AxpyParams{N: 1 << 20, Calls: 8, TaskSize: 16 << 10, Alpha: 1, Compute: false}
	cache := nanos.DefaultL2Cache()
	for _, handoff := range []bool{true, false} {
		b.Run(fmt.Sprintf("handoff=%v", handoff), func(b *testing.B) {
			b.ReportAllocs()
			var miss float64
			for i := 0; i < b.N; i++ {
				res, err := workloads.RunAxpy(workloads.Mode{
					Workers: 8, Virtual: true, NoHandoff: !handoff, Cache: &cache,
				}, workloads.AxpyNestWeak, p)
				if err != nil {
					b.Fatal(err)
				}
				miss = res.MissRatio
			}
			b.ReportMetric(miss, "miss-ratio")
		})
	}
}

// BenchmarkAblationThrottle measures the task-creation throttle (bounded
// lookahead window, §III) on the flat-depend AXPY: first the window sweep
// with the default (sharded) implementation, then the implementation ×
// window × worker-count contention matrix comparing the mutex+cond
// reference window against the sharded token bucket on the end-to-end
// workload (the isolated-component measurement is cmd/depbench's throttle
// table and internal/throttle's contention matrix).
func BenchmarkAblationThrottle(b *testing.B) {
	b.ReportAllocs()
	p := workloads.AxpyParams{N: 1 << 19, Calls: 8, TaskSize: 4 << 10, Alpha: 1, Compute: true}
	for _, window := range []int{0, 64, 512} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := workloads.RunAxpy(workloads.Mode{Workers: 0, Throttle: window},
					workloads.AxpyFlatDepend, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	impls := []struct {
		name string
		kind nanos.ThrottleKind
	}{
		{"locked", nanos.ThrottleLocked},
		{"sharded", nanos.ThrottleSharded},
	}
	for _, impl := range impls {
		for _, window := range []int{16, 256} {
			for _, workers := range []int{1, 4, 8} {
				b.Run(fmt.Sprintf("impl=%s/window=%d/w=%d", impl.name, window, workers), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := workloads.RunAxpy(workloads.Mode{
							Workers: workers, Throttle: window, ThrottleImpl: impl.kind,
						}, workloads.AxpyFlatDepend, p); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkAblationReleaseGranularity compares the Gauss-Seidel release
// granularities the paper discusses in §VIII-B: none, per-block, per-panel.
func BenchmarkAblationReleaseGranularity(b *testing.B) {
	b.ReportAllocs()
	base := workloads.GSParams{N: 512, TS: 64, Iters: 6, Compute: true}
	cases := []struct {
		name    string
		variant workloads.GSVariant
		panel   bool
	}{
		{"none", workloads.GSNestWeak, false},
		{"block", workloads.GSNestWeakRelease, false},
		{"panel", workloads.GSNestWeakRelease, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			p := base
			p.ReleaseByPanel = c.panel
			var last workloads.Result
			for i := 0; i < b.N; i++ {
				res, err := workloads.RunGS(workloads.Mode{Workers: 0}, c.variant, p)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.GFlops(), "gflop/s")
		})
	}
}

// BenchmarkAblationScheduler compares the ready-pool disciplines on the
// flat-depend AXPY: central FIFO, central LIFO, and Cilk-style work
// stealing, each with and against the direct successor hand-off that the
// paper's locality results rely on.
func BenchmarkAblationScheduler(b *testing.B) {
	b.ReportAllocs()
	p := workloads.AxpyParams{N: 1 << 19, Calls: 8, TaskSize: 8 << 10, Alpha: 1, Compute: true}
	cases := []struct {
		name string
		mode workloads.Mode
	}{
		{"central-fifo", workloads.Mode{Workers: 0}},
		{"central-lifo", workloads.Mode{Workers: 0, Policy: nanos.LIFO}},
		{"stealing", workloads.Mode{Workers: 0, Stealing: true}},
		{"central-fifo-nohandoff", workloads.Mode{Workers: 0, NoHandoff: true}},
		{"stealing-nohandoff", workloads.Mode{Workers: 0, Stealing: true, NoHandoff: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := workloads.RunAxpy(c.mode, workloads.AxpyFlatDepend, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDependencyOverhead isolates the dependency-tracking cost
// exactly as the paper does (§VIII-A): flat-taskwait (no dependencies)
// versus flat-depend (same schedule constraints expressed as dependencies).
func BenchmarkAblationDependencyOverhead(b *testing.B) {
	b.ReportAllocs()
	p := workloads.AxpyParams{N: 1 << 19, Calls: 8, TaskSize: 4 << 10, Alpha: 1, Compute: true}
	for _, v := range []workloads.AxpyVariant{workloads.AxpyFlatTaskwait, workloads.AxpyFlatDepend} {
		b.Run(string(v), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := workloads.RunAxpy(workloads.Mode{Workers: 0}, v, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCacheModel compares the two L2 models on the Figure 3
// workload: per-worker private shares (the default approximation) versus
// the physically shared 16 MiB cache. The locality ordering between
// variants must hold under both; the shared model additionally captures
// constructive sharing between workers.
func BenchmarkAblationCacheModel(b *testing.B) {
	b.ReportAllocs()
	// 2 vectors × 2²² × 8 B = 64 MiB working set: larger than the 16 MiB
	// shared L2, so locality still decides the miss ratio under both models.
	p := workloads.AxpyParams{N: 1 << 22, Calls: 8, TaskSize: 16 << 10, Alpha: 1, Compute: false}
	private := nanos.DefaultL2Cache()
	shared := nanos.DefaultSharedL2Cache()
	for _, v := range []workloads.AxpyVariant{workloads.AxpyNestWeak, workloads.AxpyNestDepend} {
		b.Run("private/"+string(v), func(b *testing.B) {
			b.ReportAllocs()
			var miss float64
			for i := 0; i < b.N; i++ {
				res, err := workloads.RunAxpy(workloads.Mode{Workers: 8, Virtual: true, Cache: &private}, v, p)
				if err != nil {
					b.Fatal(err)
				}
				miss = res.MissRatio
			}
			b.ReportMetric(miss, "miss-ratio")
		})
		b.Run("shared/"+string(v), func(b *testing.B) {
			b.ReportAllocs()
			var miss float64
			for i := 0; i < b.N; i++ {
				res, err := workloads.RunAxpy(workloads.Mode{
					Workers: 8, Virtual: true, Cache: &shared, SharedCache: true}, v, p)
				if err != nil {
					b.Fatal(err)
				}
				miss = res.MissRatio
			}
			b.ReportMetric(miss, "miss-ratio")
		})
	}
}

// BenchmarkCholeskyVariants: blocked Cholesky factorization (the dense
// linear algebra workload motivating the paper's introduction via [3]) in
// the three nesting formulations. Real-mode GFlop/s plus the virtual-mode
// effective parallelism at 16 cores.
func BenchmarkCholeskyVariants(b *testing.B) {
	b.ReportAllocs()
	p := workloads.CholParams{N: 512, TS: 64, Seed: 9, Compute: true}
	for _, v := range workloads.CholVariants {
		b.Run(string(v), func(b *testing.B) {
			b.ReportAllocs()
			var last workloads.Result
			for i := 0; i < b.N; i++ {
				res, err := workloads.RunCholesky(workloads.Mode{Workers: 0}, v, p)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.GFlops(), "gflop/s")
			vp := p
			vp.Compute = false
			vres, err := workloads.RunCholesky(workloads.Mode{Workers: 16, Virtual: true}, v, vp)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(vres.EffectiveParallelism, "eff-par")
		})
	}
}

// BenchmarkSparseLUVariants: blocked sparse LU with fill-in (the BOTS
// workload) in the three nesting formulations; the task set is
// data-dependent on the sparsity pattern.
func BenchmarkSparseLUVariants(b *testing.B) {
	b.ReportAllocs()
	p := workloads.SparseLUParams{B: 16, TS: 32, Density: 0.35, Seed: 4, Compute: true}
	for _, v := range workloads.SparseLUVariants {
		b.Run(string(v), func(b *testing.B) {
			b.ReportAllocs()
			var last workloads.Result
			var fills int64
			for i := 0; i < b.N; i++ {
				res, f, err := workloads.RunSparseLU(workloads.Mode{Workers: 0}, v, p)
				if err != nil {
					b.Fatal(err)
				}
				last, fills = res, f
			}
			b.ReportMetric(last.GFlops(), "gflop/s")
			b.ReportMetric(float64(fills), "fill-ins")
		})
	}
}

// BenchmarkClusterLazyVsEager quantifies the §X future-work claim on the
// cluster substrate: bytes moved by eager whole-dataset copies (strong
// outer deps) versus lazy per-subtask copies (weak deps).
func BenchmarkClusterLazyVsEager(b *testing.B) {
	b.ReportAllocs()
	sc := cluster.Scenario{N: 1 << 20, Calls: 8, TaskSize: 1 << 14}
	cfg := cluster.Config{Nodes: 8, ElemSize: 8, NodeMemory: 1 << 19}
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		var res cluster.Result
		for i := 0; i < b.N; i++ {
			res = sc.RunEager(cfg)
		}
		b.ReportMetric(float64(res.MovedBytes)/1e6, "MB-moved")
		b.ReportMetric(float64(res.Failures), "mem-failures")
		b.ReportMetric(float64(res.Makespan), "makespan")
	})
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		var res cluster.Result
		for i := 0; i < b.N; i++ {
			res = sc.RunLazy(cfg)
		}
		b.ReportMetric(float64(res.MovedBytes)/1e6, "MB-moved")
		b.ReportMetric(float64(res.Failures), "mem-failures")
		b.ReportMetric(float64(res.Makespan), "makespan")
	})
}

// BenchmarkMicroFibCutoff: recursive Fibonacci through the dependency
// engine under the three granularity cutoffs — full tasking, the
// sequential cutoff, and the OpenMP final clause (included tasks). The gap
// between "none" and the cutoffs is the per-task runtime overhead that
// granularity control exists to avoid.
func BenchmarkMicroFibCutoff(b *testing.B) {
	b.ReportAllocs()
	for _, m := range []workloads.FibCutoffMode{
		workloads.FibCutoffNone, workloads.FibCutoffSequential, workloads.FibCutoffFinal,
	} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var tasks int64
			for i := 0; i < b.N; i++ {
				res, _, err := workloads.RunFib(workloads.Mode{Workers: 0},
					workloads.FibParams{N: 21, Cutoff: 12, Mode: m})
				if err != nil {
					b.Fatal(err)
				}
				tasks = res.Tasks
			}
			b.ReportMetric(float64(tasks), "tasks")
		})
	}
}

// BenchmarkMicroNQueens: pure-nesting task search waited with a taskgroup.
func BenchmarkMicroNQueens(b *testing.B) {
	b.ReportAllocs()
	for _, depth := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, got, err := workloads.RunNQueens(workloads.Mode{Workers: 0},
					workloads.NQueensParams{N: 10, Depth: depth})
				if err != nil {
					b.Fatal(err)
				}
				if got != 724 {
					b.Fatalf("nqueens(10) = %d, want 724", got)
				}
			}
		})
	}
}

// BenchmarkEngineRegister: micro-benchmark of dependency registration and
// release for a chain of tasks over one region (runtime-overhead floor).
func BenchmarkEngineRegister(b *testing.B) {
	b.ReportAllocs()
	rt := nanos.New(nanos.Config{Workers: 1})
	d := rt.NewData("x", 1, 8)
	b.ResetTimer()
	rt.Run(func(tc *nanos.TaskContext) {
		for i := 0; i < b.N; i++ {
			tc.Submit(nanos.TaskSpec{
				Label: "t",
				Deps:  []nanos.Dep{nanos.DInOut(d, nanos.Iv(0, 1))},
			})
		}
	})
}

// BenchmarkTaskSpawn: micro-benchmark of bare task creation + execution
// without dependencies.
func BenchmarkTaskSpawn(b *testing.B) {
	b.ReportAllocs()
	rt := nanos.New(nanos.Config{Workers: 4})
	b.ResetTimer()
	rt.Run(func(tc *nanos.TaskContext) {
		for i := 0; i < b.N; i++ {
			tc.Submit(nanos.TaskSpec{Label: "t"})
		}
	})
}

// BenchmarkEngineContentionMatrix: full-runtime A/B of the dependency
// engines under parallel task instantiation. W generator tasks each
// submit a serial chain over their own data object from their own worker,
// so dependency registration and release happen concurrently from W
// goroutines: the global engine serializes every one of them behind its
// single mutex, the sharded engine gives each generator a private shard.
func BenchmarkEngineContentionMatrix(b *testing.B) {
	b.ReportAllocs()
	const chain = 64
	for _, eng := range []nanos.EngineKind{nanos.EngineGlobal, nanos.EngineSharded} {
		for _, w := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/w=%d", eng, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rt := nanos.New(nanos.Config{Workers: w, DepEngine: eng})
					datas := make([]nanos.DataID, w)
					for g := range datas {
						datas[g] = rt.NewData(fmt.Sprintf("x%d", g), 64, 8)
					}
					rt.Run(func(tc *nanos.TaskContext) {
						for g := 0; g < w; g++ {
							g := g
							tc.Submit(nanos.TaskSpec{
								Label:    "gen",
								WeakWait: true,
								Body: func(tc *nanos.TaskContext) {
									for k := 0; k < chain; k++ {
										tc.Submit(nanos.TaskSpec{
											Label: "link",
											Deps:  []nanos.Dep{nanos.DInOut(datas[g], nanos.Iv(0, 64))},
										})
									}
								},
							})
						}
					})
				}
				b.ReportMetric(float64(chain*w), "tasks/op")
			})
		}
	}
}
