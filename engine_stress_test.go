package nanos_test

// Engine × scheduler stress matrix: randomized multi-data nested programs
// execute under real goroutine parallelism on every combination of
// dependency engine (global-lock, sharded) and ready pool (FIFO, LIFO,
// Priority, work stealing). Tasks mix weakwait completion, early release
// directives, and depend clauses spanning several data objects — the
// multi-shard paths of the sharded engine. Every read is checked against
// the sequential pre-order oracle and the final state must match it
// exactly; run with -race to also prove the engines publish task memory
// correctly. Short mode trims seeds and worker counts so `go test ./...`
// stays fast.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	nanos "repro"
)

const xUniverse = 48
const xDatas = 3

// xTask is one task of a random multi-data program.
type xTask struct {
	label    string
	weakWait bool
	weak     bool                     // covers weak?
	release  bool                     // issue a release directive after spawning children
	covers   map[int]nanos.Interval   // data index -> nesting cover
	reads    map[int][]nanos.Interval // data index -> read intervals
	writes   map[int][]nanos.Interval
	priority int64
	children []*xTask

	seq int64
}

// buildMultiProgram generates top-level tasks whose covers span one or two
// data objects; children access sub-intervals of one of the covers.
func buildMultiProgram(rng *rand.Rand, depth int) []*xTask {
	id := 0
	var gen func(covers map[int]nanos.Interval, depth int) *xTask
	gen = func(covers map[int]nanos.Interval, depth int) *xTask {
		id++
		t := &xTask{
			label:    fmt.Sprintf("t%d", id),
			weakWait: rng.Intn(10) < 7,
			weak:     rng.Intn(10) < 7,
			release:  rng.Intn(5) == 0,
			covers:   covers,
			priority: int64(rng.Intn(5)),
		}
		datas := make([]int, 0, len(covers))
		for d := range covers {
			datas = append(datas, d)
		}
		kids := 1 + rng.Intn(3)
		for k := 0; k < kids; k++ {
			d := datas[rng.Intn(len(datas))]
			cover := covers[d]
			if cover.Len() < 2 {
				continue
			}
			lo := cover.Lo + rng.Int63n(cover.Len()-1)
			hi := lo + 1 + rng.Int63n(cover.Hi-lo)
			sub := nanos.Iv(lo, hi)
			if depth > 1 && sub.Len() >= 4 && rng.Intn(3) == 0 {
				t.children = append(t.children, gen(map[int]nanos.Interval{d: sub}, depth-1))
			} else {
				id++
				leaf := &xTask{
					label:    fmt.Sprintf("l%d", id),
					priority: int64(rng.Intn(5)),
					reads:    map[int][]nanos.Interval{},
					writes:   map[int][]nanos.Interval{},
				}
				if rng.Intn(2) == 0 {
					leaf.writes[d] = []nanos.Interval{sub}
				} else {
					leaf.reads[d] = []nanos.Interval{sub}
				}
				t.children = append(t.children, leaf)
			}
		}
		return t
	}
	n := 3 + rng.Intn(5)
	out := make([]*xTask, 0, n)
	for i := 0; i < n; i++ {
		covers := map[int]nanos.Interval{}
		nd := 1 + rng.Intn(2)
		for _, d := range rng.Perm(xDatas)[:nd] {
			lo := rng.Int63n(xUniverse - 10)
			hi := lo + int64(6+rng.Intn(18))
			if hi > xUniverse {
				hi = xUniverse
			}
			covers[d] = nanos.Iv(lo, hi)
		}
		out = append(out, gen(covers, depth))
	}
	return out
}

// multiReference assigns pre-order sequence numbers and computes expected
// reads and the final state, per data object.
func multiReference(tasks []*xTask) (expect map[string]map[[2]int64]int64, final [xDatas][]int64) {
	for d := range final {
		final[d] = make([]int64, xUniverse)
	}
	expect = make(map[string]map[[2]int64]int64)
	seq := int64(0)
	var walk func(ts []*xTask)
	walk = func(ts []*xTask) {
		for _, t := range ts {
			seq++
			t.seq = seq
			exp := make(map[[2]int64]int64)
			for d, ivs := range t.reads {
				for _, iv := range ivs {
					for p := iv.Lo; p < iv.Hi; p++ {
						exp[[2]int64{int64(d), p}] = final[d][p]
					}
				}
			}
			for d, ivs := range t.writes {
				for _, iv := range ivs {
					for p := iv.Lo; p < iv.Hi; p++ {
						final[d][p] = seq
					}
				}
			}
			expect[t.label] = exp
			walk(t.children)
		}
	}
	walk(tasks)
	return expect, final
}

// runEngineStress executes the program under the given config and checks
// serializability against the pre-order oracle.
func runEngineStress(t *testing.T, tasks []*xTask, cfg nanos.Config) {
	expect, final := multiReference(tasks)
	cfg.Debug = true // exact end-of-run leak check: Run panics on live fragments
	rt := nanos.New(cfg)
	var ids [xDatas]nanos.DataID
	var data [xDatas][]int64
	for d := 0; d < xDatas; d++ {
		ids[d] = rt.NewData(fmt.Sprintf("x%d", d), xUniverse, 8)
		data[d] = make([]int64, xUniverse)
	}
	var mu sync.Mutex
	var violations []string

	var submit func(tc *nanos.TaskContext, st *xTask)
	submit = func(tc *nanos.TaskContext, st *xTask) {
		var ds []nanos.Dep
		if len(st.children) > 0 {
			for d, cover := range st.covers {
				if st.weak {
					ds = append(ds, nanos.DWeakInOut(ids[d], cover))
				} else {
					ds = append(ds, nanos.DInOut(ids[d], cover))
				}
			}
		}
		for d, ivs := range st.reads {
			ds = append(ds, nanos.DIn(ids[d], ivs...))
		}
		for d, ivs := range st.writes {
			ds = append(ds, nanos.DInOut(ids[d], ivs...))
		}
		tc.Submit(nanos.TaskSpec{
			Label:    st.label,
			WeakWait: st.weakWait,
			Priority: st.priority,
			Deps:     ds,
			Body: func(tc *nanos.TaskContext) {
				exp := expect[st.label]
				for d, ivs := range st.reads {
					for _, iv := range ivs {
						for p := iv.Lo; p < iv.Hi; p++ {
							if got := data[d][p]; got != exp[[2]int64{int64(d), p}] {
								mu.Lock()
								violations = append(violations, fmt.Sprintf("%s read d%d[%d]=%d want %d",
									st.label, d, p, got, exp[[2]int64{int64(d), p}]))
								mu.Unlock()
							}
						}
					}
				}
				for d, ivs := range st.writes {
					for _, iv := range ivs {
						for p := iv.Lo; p < iv.Hi; p++ {
							data[d][p] = st.seq
						}
					}
				}
				for _, c := range st.children {
					submit(tc, c)
				}
				if st.release && len(st.children) > 0 {
					// The release directive: this task asserts it will not
					// touch its covers again; live children hand over.
					var rel []nanos.Dep
					for d, cover := range st.covers {
						rel = append(rel, nanos.DInOut(ids[d], cover))
					}
					tc.Release(rel...)
				}
			},
		})
	}

	rt.Run(func(tc *nanos.TaskContext) {
		for _, st := range tasks {
			submit(tc, st)
		}
	})

	if len(violations) > 0 {
		t.Fatalf("serialization violations: %v", violations[:min(4, len(violations))])
	}
	for d := 0; d < xDatas; d++ {
		for p := range data[d] {
			if data[d][p] != final[d][p] {
				t.Fatalf("final state d%d[%d] = %d, want %d", d, p, data[d][p], final[d][p])
			}
		}
	}
	if lf := rt.DepStats().Releases; lf < rt.DepStats().Fragments {
		t.Fatalf("%d fragments but only %d releases (leaked pieces)", rt.DepStats().Fragments, lf)
	}
}

// TestStressEngineSchedulerMatrix runs the multi-data stress program over
// every engine × ready-pool combination.
func TestStressEngineSchedulerMatrix(t *testing.T) {
	engines := []nanos.EngineKind{nanos.EngineGlobal, nanos.EngineSharded}
	queues := []struct {
		name     string
		policy   nanos.Policy
		stealing bool
	}{
		{"fifo", nanos.FIFO, false},
		{"lifo", nanos.LIFO, false},
		{"priority", nanos.Priority, false},
		{"stealing", nanos.FIFO, true},
	}
	seeds := 10
	if testing.Short() {
		seeds = 2
	}
	for _, eng := range engines {
		for _, q := range queues {
			t.Run(fmt.Sprintf("%s/%s", eng, q.name), func(t *testing.T) {
				for seed := int64(0); seed < int64(seeds); seed++ {
					rng := rand.New(rand.NewSource(5000 + seed))
					prog := buildMultiProgram(rng, 3)
					runEngineStress(t, prog, nanos.Config{
						Workers:   1 + rng.Intn(8),
						DepEngine: eng,
						Policy:    q.policy,
						Stealing:  q.stealing,
					})
					if t.Failed() {
						t.Fatalf("seed %d failed", seed)
					}
				}
			})
		}
	}
}

// TestStressShardedManyWorkers oversubscribes the sharded engine (more
// workers than cores) on a wider program, the configuration most likely to
// interleave cross-shard grants with registration.
func TestStressShardedManyWorkers(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(9000 + seed))
		prog := buildMultiProgram(rng, 2)
		runEngineStress(t, prog, nanos.Config{Workers: 24, DepEngine: nanos.EngineSharded})
		if t.Failed() {
			t.Fatalf("seed %d failed", seed)
		}
	}
}

// TestStressShardedThrottleRelease combines the sharded engine with the
// open-task throttle and release directives: blocked submitters yield
// tokens while releases from other shards wake successors.
func TestStressShardedThrottleRelease(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(12000 + seed))
		prog := buildMultiProgram(rng, 2)
		runEngineStress(t, prog, nanos.Config{
			Workers:           4,
			DepEngine:         nanos.EngineSharded,
			ThrottleOpenTasks: 6,
		})
		if t.Failed() {
			t.Fatalf("seed %d failed", seed)
		}
	}
}
