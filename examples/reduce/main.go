// Reduce example: the task-reduction extension (the paper's future-work
// direction §X integrated with nesting and weak dependencies).
//
// A dot product is computed by reduction tasks that all accumulate into one
// scalar concurrently; the tasks are created by several nested generators,
// each covering the accumulator with a weak reduction access, so the
// generators run (and instantiate) in parallel too. A final reader task
// observes the completed sum. Compare the serialized alternative: without
// reductions, the accumulations would need inout accesses and would chain.
//
// Run with:
//
//	go run ./examples/reduce
package main

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	nanos "repro"
)

const (
	n      = 1 << 20
	block  = 1 << 14
	chunks = 4 // parallel generators
)

func run(reduction bool) (time.Duration, float64) {
	rt := nanos.New(nanos.Config{Workers: 8})
	xd := rt.NewData("x", n, 8)
	acc := rt.NewData("acc", 1, 8)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 0.5
		y[i] = 2.0
	}
	var sumBits atomic.Uint64 // float64 accumulator via CAS

	add := func(v float64) {
		for {
			old := sumBits.Load()
			nv := atomicAdd(old, v)
			if sumBits.CompareAndSwap(old, nv) {
				return
			}
		}
	}

	accDep := func() nanos.Dep {
		if reduction {
			return nanos.DRed(acc, nanos.Iv(0, 1))
		}
		return nanos.DInOut(acc, nanos.Iv(0, 1)) // pre-extension: serial chain
	}

	var result float64
	start := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		per := int64(n / chunks)
		for c := int64(0); c < chunks; c++ {
			lo, hi := c*per, (c+1)*per
			tc.Submit(nanos.TaskSpec{
				Label:    "generator",
				WeakWait: true,
				Deps: []nanos.Dep{
					nanos.DWeakIn(xd, nanos.Iv(lo, hi)),
					nanos.DWeakRed(acc, nanos.Iv(0, 1)),
				},
				Body: func(tc *nanos.TaskContext) {
					for s := lo; s < hi; s += block {
						s := s
						e := min(s+block, hi)
						tc.Submit(nanos.TaskSpec{
							Label: "dot-block",
							Flops: 2 * (e - s),
							Deps: []nanos.Dep{
								nanos.DIn(xd, nanos.Iv(s, e)),
								accDep(),
							},
							Body: func(*nanos.TaskContext) {
								var part float64
								for i := s; i < e; i++ {
									part += x[i] * y[i]
								}
								add(part)
							},
						})
					}
				},
			})
		}
		tc.Submit(nanos.TaskSpec{
			Label: "read",
			Deps:  []nanos.Dep{nanos.DIn(acc, nanos.Iv(0, 1))},
			Body: func(*nanos.TaskContext) {
				result = fromBits(sumBits.Load())
			},
		})
	})
	el := time.Since(start)
	want := float64(n) * 0.5 * 2.0
	if result != want {
		panic(fmt.Sprintf("dot = %v, want %v", result, want))
	}
	return el, result
}

func main() {
	serialT, _ := run(false)
	redT, dot := run(true)
	fmt.Printf("dot product of %d elements, %d-element blocks, 8 workers (result %.0f, validated)\n", n, block, dot)
	fmt.Printf("  inout chain (pre-extension):   %8v\n", serialT.Round(time.Microsecond))
	fmt.Printf("  reduction group (this paper's §X direction): %8v\n", redT.Round(time.Microsecond))
}

func min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// atomicAdd adds v to the float64 stored in bits.
func atomicAdd(bits uint64, v float64) uint64 {
	return math.Float64bits(math.Float64frombits(bits) + v)
}

func fromBits(b uint64) float64 { return math.Float64frombits(b) }
