// Taskloop example: a three-stage vector normalization built from chunked
// loops and a task reduction, run twice — once with the Taskloop helper
// (OpenMP's taskloop construct extended with per-chunk depend entries,
// one task per chunk) and once with Worksharing (one dependency-carrying
// task per stage, chunks claimed inside its body) — to compare the two
// chunked-loop constructs on the same program.
//
//	stage 1  fill chunks of x                    depend(out: chunk)
//	         accumulate |x|² per chunk           depend(reduction: sum)
//	stage 2  norm = sqrt(sum)                    depend(in: sum) depend(out: norm)
//	stage 3  x[chunk] /= norm                    depend(in: norm) depend(inout: chunk)
//
// No taskwait appears between the stages: each stage-3 chunk starts as soon
// as the norm is ready, and the norm as soon as every reduction
// contribution arrived. Chunks of stage 1 and stage 3 for different ranges
// overlap freely under Taskloop; under Worksharing each stage is one task
// with union dependencies, so the stages order as wholes (coarser
// dependencies, but the whole pipeline pays 3 tasks instead of 2×chunks+1
// — worth it when chunks are this fine).
//
// Run with:
//
//	go run ./examples/taskloop
package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	nanos "repro"
)

const (
	n     = 1 << 22
	grain = 1 << 16
)

// normalize fills x, computes its 2-norm through a task reduction, and
// scales x by it, using either one task per chunk (Taskloop) or one
// chunk-distributed task per stage (Worksharing). It returns the wall
// time and the number of tasks executed.
func normalize(x []float64, worksharing bool) (time.Duration, int64) {
	var (
		sumMu sync.Mutex
		sum   float64
		norm  float64
	)

	rt := nanos.New(nanos.Config{Workers: 8})
	xd := rt.NewData("x", n, 8)
	// Scalar cells for the reduction result and the norm.
	sd := rt.NewData("sum", 1, 8)
	nd := rt.NewData("norm", 1, 8)

	fillBody := func(_ *nanos.TaskContext, lo, hi int64) {
		var local float64
		for i := lo; i < hi; i++ {
			x[i] = math.Sin(float64(i))
			local += x[i] * x[i]
		}
		sumMu.Lock()
		sum += local
		sumMu.Unlock()
	}
	scaleBody := func(_ *nanos.TaskContext, lo, hi int64) {
		for i := lo; i < hi; i++ {
			x[i] /= norm
		}
	}
	// The depend callbacks serve both constructs: Taskloop calls them once
	// per chunk, Worksharing once with the whole range.
	fillDeps := func(lo, hi int64) []nanos.Dep {
		return []nanos.Dep{
			nanos.DOut(xd, nanos.Iv(lo, hi)),
			nanos.DRed(sd, nanos.Iv(0, 1)),
		}
	}
	scaleDeps := func(lo, hi int64) []nanos.Dep {
		return []nanos.Dep{
			nanos.DIn(nd, nanos.Iv(0, 1)),
			nanos.DInOut(xd, nanos.Iv(lo, hi)),
		}
	}
	fillFlops := func(lo, hi int64) int64 { return 3 * (hi - lo) }
	scaleFlops := func(lo, hi int64) int64 { return hi - lo }

	start := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		// Stage 1: fill + reduce. The reduction entries form one commuting
		// group; the norm task orders after the whole group.
		if worksharing {
			tc.Worksharing(nanos.WorksharingSpec{
				Label: "fill",
				Lo:    0, Hi: n, Grain: grain,
				Deps: fillDeps, Flops: fillFlops, Body: fillBody,
			})
		} else {
			nanos.Taskloop(tc, nanos.TaskloopSpec{
				Label: "fill",
				Lo:    0, Hi: n, Grain: grain,
				Deps: fillDeps, Flops: fillFlops, Body: fillBody,
			})
		}

		// Stage 2: the norm — an ordinary task under both constructs.
		tc.Submit(nanos.TaskSpec{
			Label: "norm",
			Deps: []nanos.Dep{
				nanos.DIn(sd, nanos.Iv(0, 1)),
				nanos.DOut(nd, nanos.Iv(0, 1)),
			},
			Body: func(*nanos.TaskContext) { norm = math.Sqrt(sum) },
		})

		// Stage 3: scale.
		if worksharing {
			tc.Worksharing(nanos.WorksharingSpec{
				Label: "scale",
				Lo:    0, Hi: n, Grain: grain,
				Deps: scaleDeps, Flops: scaleFlops, Body: scaleBody,
			})
		} else {
			nanos.Taskloop(tc, nanos.TaskloopSpec{
				Label: "scale",
				Lo:    0, Hi: n, Grain: grain,
				Deps: scaleDeps, Flops: scaleFlops, Body: scaleBody,
			})
		}
	})
	return time.Since(start), rt.TaskCount()
}

func main() {
	x := make([]float64, n)
	fmt.Printf("vector normalization, N=%d, chunks of %d, 8 workers\n", n, grain)
	for _, ws := range []bool{false, true} {
		el, tasks := normalize(x, ws)

		// ‖x‖ must now be 1.
		var check float64
		for _, v := range x {
			check += v * v
		}
		name := "taskloop    (task per chunk)  "
		if ws {
			name = "worksharing (task per stage)  "
		}
		fmt.Printf("  %s wall %10v  tasks %5d  final ‖x‖² %.12f (want 1.0)\n",
			name, el.Round(time.Microsecond), tasks, check)
	}
}
