// Taskloop example: a three-stage vector normalization built from chunked
// loops (the Taskloop helper — OpenMP's taskloop construct extended with
// per-chunk depend entries) and a task reduction.
//
//	stage 1  fill chunks of x                    depend(out: chunk)
//	         accumulate |x|² per chunk           depend(reduction: sum)
//	stage 2  norm = sqrt(sum)                    depend(in: sum) depend(out: norm)
//	stage 3  x[chunk] /= norm                    depend(in: norm) depend(inout: chunk)
//
// No taskwait appears between the stages: each stage-3 chunk starts as soon
// as the norm is ready, and the norm as soon as every reduction
// contribution arrived. Chunks of stage 1 and stage 3 for different ranges
// overlap freely.
//
// Run with:
//
//	go run ./examples/taskloop
package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	nanos "repro"
)

const (
	n     = 1 << 22
	grain = 1 << 16
)

func main() {
	x := make([]float64, n)
	var (
		sumMu sync.Mutex
		sum   float64
		norm  float64
	)

	rt := nanos.New(nanos.Config{Workers: 8})
	xd := rt.NewData("x", n, 8)
	// Scalar cells for the reduction result and the norm.
	sd := rt.NewData("sum", 1, 8)
	nd := rt.NewData("norm", 1, 8)

	start := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		// Stage 1: fill + reduce. The reduction entries of all chunks form
		// one commuting group; the norm task orders after the whole group.
		nanos.Taskloop(tc, nanos.TaskloopSpec{
			Label: "fill",
			Lo:    0, Hi: n, Grain: grain,
			Deps: func(lo, hi int64) []nanos.Dep {
				return []nanos.Dep{
					nanos.DOut(xd, nanos.Iv(lo, hi)),
					nanos.DRed(sd, nanos.Iv(0, 1)),
				}
			},
			Flops: func(lo, hi int64) int64 { return 3 * (hi - lo) },
			Body: func(_ *nanos.TaskContext, lo, hi int64) {
				var local float64
				for i := lo; i < hi; i++ {
					x[i] = math.Sin(float64(i))
					local += x[i] * x[i]
				}
				sumMu.Lock()
				sum += local
				sumMu.Unlock()
			},
		})

		// Stage 2: the norm.
		tc.Submit(nanos.TaskSpec{
			Label: "norm",
			Deps: []nanos.Dep{
				nanos.DIn(sd, nanos.Iv(0, 1)),
				nanos.DOut(nd, nanos.Iv(0, 1)),
			},
			Body: func(*nanos.TaskContext) { norm = math.Sqrt(sum) },
		})

		// Stage 3: scale.
		nanos.Taskloop(tc, nanos.TaskloopSpec{
			Label: "scale",
			Lo:    0, Hi: n, Grain: grain,
			Deps: func(lo, hi int64) []nanos.Dep {
				return []nanos.Dep{
					nanos.DIn(nd, nanos.Iv(0, 1)),
					nanos.DInOut(xd, nanos.Iv(lo, hi)),
				}
			},
			Flops: func(lo, hi int64) int64 { return hi - lo },
			Body: func(_ *nanos.TaskContext, lo, hi int64) {
				for i := lo; i < hi; i++ {
					x[i] /= norm
				}
			},
		})
	})
	el := time.Since(start)

	// ‖x‖ must now be 1.
	var check float64
	for _, v := range x {
		check += v * v
	}
	fmt.Printf("vector normalization, N=%d, chunks of %d, 8 workers\n", n, grain)
	fmt.Printf("  wall time       %v\n", el.Round(time.Microsecond))
	fmt.Printf("  GFlop/s         %.2f\n", float64(rt.Flops())/el.Seconds()/1e9)
	fmt.Printf("  tasks           %d (2×%d chunks + 1 norm)\n", rt.TaskCount(), (n+grain-1)/grain)
	fmt.Printf("  final ‖x‖²      %.12f (want 1.0)\n", check)
}
