// Lint example: the runtime's verification mode (Config.Verify) checking a
// task program's depend annotations, in the spirit of Nanos6's verification
// tooling.
//
// Two kinds of findings are demonstrated:
//
//   - a Touch assertion not covered by the task's strong depend entries
//     (here: a task that writes under a depend(in:) entry, and a task that
//     touches data through a weak entry — weak entries declare that the
//     task itself performs no access, §VI);
//   - a child task whose depend entry escapes its parent's entries — the
//     data-race hazard of combining nesting with dependencies that §III
//     describes: nothing orders the escaping access against the parent's
//     siblings.
//
// Run with:
//
//	go run ./examples/lint
package main

import (
	"fmt"

	nanos "repro"
)

func main() {
	rt := nanos.New(nanos.Config{Workers: 4, Verify: true})
	x := rt.NewData("x", 1000, 8)
	y := rt.NewData("y", 1000, 8)
	data := make([]float64, 1000)

	rt.Run(func(tc *nanos.TaskContext) {
		// A correct task: the Touch assertions match the depend entries.
		tc.Submit(nanos.TaskSpec{
			Label: "well-formed",
			Deps:  []nanos.Dep{nanos.DInOut(x, nanos.Iv(0, 500))},
			Body: func(tc *nanos.TaskContext) {
				tc.Touch(x, false, nanos.Iv(0, 500)) // read — covered
				tc.Touch(x, true, nanos.Iv(0, 250))  // write — covered
				for i := 0; i < 250; i++ {
					data[i]++
				}
			},
		})

		// Finding 1: writing under a read-only entry.
		tc.Submit(nanos.TaskSpec{
			Label: "writes-under-in",
			Deps:  []nanos.Dep{nanos.DIn(x, nanos.Iv(0, 500))},
			Body: func(tc *nanos.TaskContext) {
				tc.Touch(x, true, nanos.Iv(100, 200))
			},
		})

		// Finding 2: touching through a weak entry.
		tc.Submit(nanos.TaskSpec{
			Label:    "touches-weak",
			WeakWait: true,
			Deps:     []nanos.Dep{nanos.DWeakInOut(y, nanos.Iv(0, 1000))},
			Body: func(tc *nanos.TaskContext) {
				tc.Touch(y, false, nanos.Iv(0, 8))
			},
		})

		// Finding 3: a child that escapes its parent's depend entries.
		tc.Submit(nanos.TaskSpec{
			Label:    "parent",
			WeakWait: true,
			Deps:     []nanos.Dep{nanos.DWeakInOut(y, nanos.Iv(0, 500))},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(nanos.TaskSpec{
					Label: "escaping-child",
					Deps:  []nanos.Dep{nanos.DInOut(y, nanos.Iv(400, 700))},
				})
			},
		})
	})

	fmt.Printf("verification findings: %d\n\n", rt.ViolationCount())
	for i, v := range rt.Violations() {
		fmt.Printf("%2d. %s\n", i+1, v)
	}
	fmt.Println("\n(the well-formed task produced no finding)")
}
