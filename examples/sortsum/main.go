// Sortsum example: the paper's listing 7 — a recursive quicksort followed
// by a recursive prefix sum, connected through fine-grained dependencies.
//
// The quicksort tasks use weakwait, so every sorted region releases at
// base-case granularity; the prefix sum covers its data with weak accesses,
// so its leaf tasks link directly to the sort leaves. The two algorithms
// overlap in time (Figure 7). The example prints the timeline and the
// measured phase overlap for both the weak and the regular formulation.
//
// Run with:
//
//	go run ./examples/sortsum
package main

import (
	"fmt"
	"math/rand"
	"sort"

	nanos "repro"
	"repro/internal/trace"
)

const (
	n  = 1 << 15
	ts = 1 << 9
)

func main() {
	for _, weak := range []bool{true, false} {
		runVariant(weak)
	}
}

func runVariant(weak bool) {
	rt := nanos.New(nanos.Config{Workers: 8, Virtual: true, EnableTrace: true})
	tr := rt.Tracer()
	for _, k := range []string{"quick_sort", "insertion_sort", "prefix_sum", "prefix_base", "accumulate"} {
		tr.KindID(k)
	}
	dd := rt.NewData("data", n, 8)

	data := make([]int64, n)
	rng := rand.New(rand.NewSource(99))
	for i := range data {
		data[i] = rng.Int63n(1 << 20)
	}
	ref := append([]int64(nil), data...)

	var submitQuick func(tc *nanos.TaskContext, lo, hi int64)
	submitQuick = func(tc *nanos.TaskContext, lo, hi int64) {
		tc.Submit(nanos.TaskSpec{
			Label: "quick_sort", Kind: "quick_sort", Cost: hi - lo, WeakWait: weak,
			Deps: []nanos.Dep{nanos.DInOut(dd, nanos.Iv(lo, hi))},
			Body: func(tc *nanos.TaskContext) {
				if hi-lo <= ts {
					tc.Submit(nanos.TaskSpec{
						Label: "insertion_sort", Kind: "insertion_sort", Cost: (hi - lo) * 4,
						Deps: []nanos.Dep{nanos.DInOut(dd, nanos.Iv(lo, hi))},
						Body: func(*nanos.TaskContext) { insertion(data, lo, hi) },
					})
					return
				}
				p := part(data, lo, hi)
				if p-lo >= 2 {
					submitQuick(tc, lo, p)
				}
				if hi-(p+1) >= 2 {
					submitQuick(tc, p+1, hi)
				}
			},
		})
	}

	var prefix func(tc *nanos.TaskContext, lo, sz, stride int64)
	prefix = func(tc *nanos.TaskContext, lo, sz, stride int64) {
		if sz <= ts*stride {
			tc.Submit(nanos.TaskSpec{
				Label: "prefix_base", Kind: "prefix_base", Cost: sz / stride,
				Deps: []nanos.Dep{nanos.DIn(dd, nanos.Iv(lo, lo+1)), nanos.DInOut(dd, nanos.Iv(lo+stride, lo+sz))},
				Body: func(*nanos.TaskContext) {
					for i := stride; i < sz; i += stride {
						data[lo+i] += data[lo+i-stride]
					}
				},
			})
			return
		}
		for i := int64(0); i < sz; i += ts * stride {
			prefix(tc, lo+i, minI(ts*stride, sz-i), stride)
		}
		sub := (ts - 1) * stride
		dep := nanos.DWeakInOut(dd, nanos.Iv(lo+sub, lo+sz))
		if !weak {
			dep = nanos.DInOut(dd, nanos.Iv(lo+sub, lo+sz))
		}
		tc.Submit(nanos.TaskSpec{
			Label: "prefix_sum", Kind: "prefix_sum", Cost: 1, WeakWait: weak,
			Deps: []nanos.Dep{dep},
			Body: func(tc *nanos.TaskContext) { prefix(tc, lo+sub, sz-sub, ts*stride) },
		})
		for i := sub; i+stride < sz; i += ts * stride {
			base, size := lo+i, minI(ts*stride, sz-i)
			tc.Submit(nanos.TaskSpec{
				Label: "accumulate", Kind: "accumulate", Cost: size / stride,
				Deps: []nanos.Dep{nanos.DIn(dd, nanos.Iv(base, base+1)), nanos.DInOut(dd, nanos.Iv(base+stride, base+size))},
				Body: func(*nanos.TaskContext) {
					for j := stride; j < size; j += stride {
						data[base+j] += data[base]
					}
				},
			})
		}
	}

	rt.Run(func(tc *nanos.TaskContext) {
		submitQuick(tc, 0, n)
		dep := nanos.DWeakInOut(dd, nanos.Iv(0, n))
		if !weak {
			dep = nanos.DInOut(dd, nanos.Iv(0, n))
		}
		tc.Submit(nanos.TaskSpec{
			Label: "prefix_sum", Kind: "prefix_sum", Cost: 1, WeakWait: weak,
			Deps: []nanos.Dep{dep},
			Body: func(tc *nanos.TaskContext) { prefix(tc, 0, n, 1) },
		})
	})

	// Validate.
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	var sum int64
	for i := range ref {
		sum += ref[i]
		if data[i] != sum {
			panic(fmt.Sprintf("prefix[%d] = %d, want %d", i, data[i], sum))
		}
	}

	name := "weak dependencies + weakwait"
	if !weak {
		name = "regular dependencies"
	}
	fmt.Printf("quicksort + prefix sum, %s (N=%d, TS=%d, 8 virtual cores) — validated\n", name, n, ts)
	fmt.Print(tr.RenderASCII(100))
	sortK := []trace.Kind{tr.KindID("quick_sort"), tr.KindID("insertion_sort")}
	prefK := []trace.Kind{tr.KindID("prefix_sum"), tr.KindID("prefix_base"), tr.KindID("accumulate")}
	ov := tr.Overlap(sortK, prefK)
	fmt.Printf("phase overlap: %d of %d time units (%.1f%%)\n\n", ov, rt.VirtualTime(),
		100*float64(ov)/float64(rt.VirtualTime()))
}

func insertion(a []int64, lo, hi int64) {
	for i := lo + 1; i < hi; i++ {
		v := a[i]
		j := i - 1
		for j >= lo && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func part(a []int64, lo, hi int64) int64 {
	mid := lo + (hi-lo)/2
	x, y, z := a[lo], a[mid], a[hi-1]
	mi := mid
	if (x <= y && y <= z) || (z <= y && y <= x) {
		mi = mid
	} else if (y <= x && x <= z) || (z <= x && x <= y) {
		mi = lo
	} else {
		mi = hi - 1
	}
	a[mi], a[hi-1] = a[hi-1], a[mi]
	pivot := a[hi-1]
	p := lo
	for i := lo; i < hi-1; i++ {
		if a[i] < pivot {
			a[i], a[p] = a[p], a[i]
			p++
		}
	}
	a[p], a[hi-1] = a[hi-1], a[p]
	return p
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
