// Cholesky example: blocked Cholesky factorization with two levels of
// tasks — one weak panel task per factorization step, kernel subtasks
// (potrf/trsm/syrk/gemm) with block-level dependencies.
//
// Step k's panel declares depend(weakinout:) over the whole trailing
// matrix, which strictly contains step k+1's region: the weak entries never
// defer the panels (§VI), so all panels instantiate their kernels in
// parallel, and the weakwait hand-over (§V) connects kernels of successive
// steps through fine-grained block dependencies — a trsm of step k+1 starts
// as soon as the gemms feeding its block finish, not when step k ends.
//
// Run with:
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	nanos "repro"
)

const (
	n  = 512 // matrix side
	ts = 64  // block side
	b  = n / ts
	bs = ts * ts
)

// Block (i,j) occupies the contiguous interval [(i*b+j)·bs, (i*b+j+1)·bs).
func blkIv(i, j int64) nanos.Interval {
	off := (i*int64(b) + j) * int64(bs)
	return nanos.Iv(off, off+int64(bs))
}

func main() {
	a := make([]float64, b*b*bs)
	initSPD(a)

	rt := nanos.New(nanos.Config{Workers: 8, EnableTrace: true})
	ad := rt.NewData("A", int64(len(a)), 8)
	blk := func(i, j int64) []float64 {
		off := (i*int64(b) + j) * int64(bs)
		return a[off : off+int64(bs)]
	}

	start := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		for k := int64(0); k < b; k++ {
			k := k
			// The blocks step k touches: rows i ≥ k, columns k..i.
			region := make([]nanos.Interval, 0, b-int(k))
			for i := k; i < b; i++ {
				region = append(region, nanos.Iv(blkIv(i, k).Lo, blkIv(i, i).Hi))
			}
			tc.Submit(nanos.TaskSpec{
				Label:    "panel",
				Kind:     "panel",
				WeakWait: true,
				Touches:  []nanos.Dep{}, // the panel only instantiates subtasks
				Deps:     []nanos.Dep{nanos.DWeakInOut(ad, region...)},
				Body: func(tc *nanos.TaskContext) {
					tc.Submit(nanos.TaskSpec{
						Label: "potrf", Kind: "potrf", Flops: ts * ts * ts / 3,
						Deps: []nanos.Dep{nanos.DInOut(ad, blkIv(k, k))},
						Body: func(*nanos.TaskContext) { potrf(blk(k, k)) },
					})
					for i := k + 1; i < b; i++ {
						i := i
						tc.Submit(nanos.TaskSpec{
							Label: "trsm", Kind: "trsm", Flops: ts * ts * ts,
							Deps: []nanos.Dep{nanos.DIn(ad, blkIv(k, k)), nanos.DInOut(ad, blkIv(i, k))},
							Body: func(*nanos.TaskContext) { trsm(blk(k, k), blk(i, k)) },
						})
					}
					for i := k + 1; i < b; i++ {
						i := i
						tc.Submit(nanos.TaskSpec{
							Label: "syrk", Kind: "syrk", Flops: ts * ts * ts,
							Deps: []nanos.Dep{nanos.DIn(ad, blkIv(i, k)), nanos.DInOut(ad, blkIv(i, i))},
							Body: func(*nanos.TaskContext) { syrk(blk(i, k), blk(i, i)) },
						})
						for j := k + 1; j < i; j++ {
							j := j
							tc.Submit(nanos.TaskSpec{
								Label: "gemm", Kind: "gemm", Flops: 2 * ts * ts * ts,
								Deps: []nanos.Dep{
									nanos.DIn(ad, blkIv(i, k)), nanos.DIn(ad, blkIv(j, k)),
									nanos.DInOut(ad, blkIv(i, j)),
								},
								Body: func(*nanos.TaskContext) { gemm(blk(i, k), blk(j, k), blk(i, j)) },
							})
						}
					}
				},
			})
		}
	})
	el := time.Since(start)

	fmt.Printf("Cholesky %dx%d in %dx%d blocks, 8 workers, nested weak panels\n", n, n, ts, ts)
	fmt.Printf("  wall time             %v\n", el.Round(time.Microsecond))
	fmt.Printf("  GFlop/s               %.2f\n", float64(rt.Flops())/el.Seconds()/1e9)
	fmt.Printf("  tasks                 %d\n", rt.TaskCount())
	fmt.Printf("  effective parallelism %.2f\n", rt.EffectiveParallelism())
	fmt.Printf("  residual max|A-LLᵀ|   %.3g\n", residual(a))
	st := rt.DepStats()
	fmt.Printf("  engine: %d fragments, %d hand-overs (cross-panel dependencies)\n",
		st.Fragments, st.Handovers)
}

// initSPD fills a (block layout) with a symmetric matrix made positive
// definite by diagonal dominance, and stashes a copy for the residual.
var original []float64

func initSPD(a []float64) {
	rng := rand.New(rand.NewSource(2017))
	at := func(r, c int64) *float64 {
		bi, bj := r/ts, c/ts
		return &a[(bi*int64(b)+bj)*int64(bs)+(r%ts)*ts+(c%ts)]
	}
	for r := int64(0); r < n; r++ {
		for c := int64(0); c <= r; c++ {
			v := 2*rng.Float64() - 1
			if r == c {
				v = math.Abs(v) + n
			}
			*at(r, c) = v
			*at(c, r) = v
		}
	}
	original = append([]float64(nil), a...)
}

// residual returns max |A - L·Lᵀ| over the lower triangle.
func residual(a []float64) float64 {
	at := func(m []float64, r, c int64) float64 {
		bi, bj := r/ts, c/ts
		return m[(bi*int64(b)+bj)*int64(bs)+(r%ts)*ts+(c%ts)]
	}
	l := func(r, c int64) float64 {
		if c > r {
			return 0
		}
		return at(a, r, c)
	}
	var worst float64
	for r := int64(0); r < n; r++ {
		for c := int64(0); c <= r; c++ {
			var s float64
			for p := int64(0); p <= c; p++ {
				s += l(r, p) * l(c, p)
			}
			if d := math.Abs(s - at(original, r, c)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// potrf factors a ts×ts block in place (lower Cholesky).
func potrf(a []float64) {
	for c := 0; c < ts; c++ {
		d := a[c*ts+c]
		for p := 0; p < c; p++ {
			d -= a[c*ts+p] * a[c*ts+p]
		}
		d = math.Sqrt(d)
		a[c*ts+c] = d
		for r := c + 1; r < ts; r++ {
			s := a[r*ts+c]
			for p := 0; p < c; p++ {
				s -= a[r*ts+p] * a[c*ts+p]
			}
			a[r*ts+c] = s / d
		}
	}
}

// trsm solves X·Lᵀ = A in place over block a.
func trsm(l, a []float64) {
	for r := 0; r < ts; r++ {
		for c := 0; c < ts; c++ {
			s := a[r*ts+c]
			for p := 0; p < c; p++ {
				s -= a[r*ts+p] * l[c*ts+p]
			}
			a[r*ts+c] = s / l[c*ts+c]
		}
	}
}

// syrk updates the lower triangle of a diagonal block: d -= x·xᵀ.
func syrk(x, d []float64) {
	for r := 0; r < ts; r++ {
		for c := 0; c <= r; c++ {
			s := d[r*ts+c]
			for p := 0; p < ts; p++ {
				s -= x[r*ts+p] * x[c*ts+p]
			}
			d[r*ts+c] = s
		}
	}
}

// gemm updates a trailing block: c -= x·yᵀ.
func gemm(x, y, c []float64) {
	for r := 0; r < ts; r++ {
		for cc := 0; cc < ts; cc++ {
			s := c[r*ts+cc]
			for p := 0; p < ts; p++ {
				s -= x[r*ts+p] * y[cc*ts+p]
			}
			c[r*ts+cc] = s
		}
	}
}
