// Heat example: the paper's listing 6 — Gauss-Seidel heat propagation over
// a plane, one task per iteration with depend(weakinout) + weakwait, one
// subtask per tile with the 5-point wavefront dependencies.
//
// The weak formulation lets tiles of iteration k+1 start as soon as their
// neighborhood from iteration k is released, so the wavefronts of several
// iterations run concurrently — the effect behind Figures 5 and 6.
//
// Run with:
//
//	go run ./examples/heat
package main

import (
	"fmt"
	"time"

	nanos "repro"
)

const (
	nSide = 512 // interior elements per side
	ts    = 64  // tile side
	iters = 16
)

func main() {
	b := int64(nSide / ts) // interior blocks per side
	side := b + 2          // block grid incl. halo ring
	m := int64(nSide + 2)  // plane stride incl. boundary

	a := make([]float64, m*m)
	for i := int64(0); i < m; i++ {
		a[i] = 1
		a[(m-1)*m+i] = 1
		a[i*m] = 1
		a[i*m+m-1] = 1
	}

	rt := nanos.New(nanos.Config{Workers: 8, EnableTrace: true})
	ad := rt.NewData("A", side*side*ts*ts, 8)
	blk := func(i, j int64) nanos.Interval { return nanos.BlockInterval(side, ts, i, j) }

	kernel := func(bi, bj int64) {
		r0, c0 := (bi-1)*ts+1, (bj-1)*ts+1
		for r := r0; r < r0+ts; r++ {
			for c := c0; c < c0+ts; c++ {
				a[r*m+c] = 0.25 * (a[(r-1)*m+c] + a[r*m+c-1] + a[r*m+c+1] + a[(r+1)*m+c])
			}
		}
	}

	start := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		for it := 0; it < iters; it++ {
			tc.Submit(nanos.TaskSpec{
				Label:    "iteration",
				WeakWait: true,
				Deps:     []nanos.Dep{nanos.DWeakInOut(ad, nanos.Iv(0, side*side*ts*ts))},
				Body: func(tc *nanos.TaskContext) {
					for i := int64(1); i <= b; i++ {
						for j := int64(1); j <= b; j++ {
							i, j := i, j
							tc.Submit(nanos.TaskSpec{
								Label: "tile",
								Kind:  "tile",
								Flops: 4 * ts * ts,
								Deps: []nanos.Dep{
									nanos.DIn(ad, blk(i-1, j)),
									nanos.DIn(ad, blk(i, j-1)),
									nanos.DInOut(ad, blk(i, j)),
									nanos.DIn(ad, blk(i, j+1)),
									nanos.DIn(ad, blk(i+1, j)),
								},
								Body: func(*nanos.TaskContext) { kernel(i, j) },
							})
						}
					}
				},
			})
		}
	})
	el := time.Since(start)

	// A cheap checksum so the work cannot be optimized away, plus stats.
	var sum float64
	for _, v := range a {
		sum += v
	}
	fmt.Printf("Gauss-Seidel %dx%d, tiles %dx%d, %d iterations, 8 workers\n", nSide, nSide, ts, ts, iters)
	fmt.Printf("  wall time          %v\n", el.Round(time.Microsecond))
	fmt.Printf("  GFlop/s            %.2f\n", float64(rt.Flops())/el.Seconds()/1e9)
	fmt.Printf("  tasks              %d\n", rt.TaskCount())
	fmt.Printf("  effective parallelism %.2f\n", rt.EffectiveParallelism())
	fmt.Printf("  plane checksum     %.6f\n", sum)
	st := rt.DepStats()
	fmt.Printf("  engine: %d fragments, %d hand-overs (cross-iteration wavefronts)\n",
		st.Fragments, st.Handovers)
}
