// AXPY example: the paper's listing 5 — a blocked y ← αx + y where the
// outer task covers the vectors with weak accesses and the weakwait clause,
// so the number of subtasks is independent of the depend clause, repeated
// calls pipeline block-wise, and the result is still race-free.
//
// The example runs the same computation with the pre-extension formulation
// (strong outer deps, nest-depend) and with weak accesses, and prints both
// timings.
//
// Run with:
//
//	go run ./examples/axpy
package main

import (
	"fmt"
	"time"

	nanos "repro"
)

const (
	n     = 1 << 20 // vector elements
	block = 1 << 14 // elements per leaf task
	calls = 20
	alpha = 0.5
)

// axpyCall submits one call of the blocked axpy as a nested task.
func axpyCall(tc *nanos.TaskContext, xd, yd nanos.DataID, x, y []float64, weak bool) {
	outer := []nanos.Dep{nanos.DIn(xd, nanos.Iv(0, n)), nanos.DInOut(yd, nanos.Iv(0, n))}
	if weak {
		outer = []nanos.Dep{nanos.DWeakIn(xd, nanos.Iv(0, n)), nanos.DWeakInOut(yd, nanos.Iv(0, n))}
	}
	tc.Submit(nanos.TaskSpec{
		Label:    "axpy",
		WeakWait: weak,
		Deps:     outer,
		Body: func(tc *nanos.TaskContext) {
			for start := int64(0); start < n; start += block {
				start := start
				end := min(start+block, int64(n))
				tc.Submit(nanos.TaskSpec{
					Label: "axpy-block",
					Flops: 2 * (end - start),
					Deps: []nanos.Dep{
						nanos.DIn(xd, nanos.Iv(start, end)),
						nanos.DInOut(yd, nanos.Iv(start, end)),
					},
					Body: func(*nanos.TaskContext) {
						for i := start; i < end; i++ {
							y[i] += alpha * x[i]
						}
					},
				})
			}
			if !weak {
				tc.Taskwait() // the pre-extension coordination (§III)
			}
		},
	})
}

func run(weak bool) (time.Duration, float64) {
	rt := nanos.New(nanos.Config{Workers: 8})
	xd := rt.NewData("x", n, 8)
	yd := rt.NewData("y", n, 8)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	start := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		for c := 0; c < calls; c++ {
			axpyCall(tc, xd, yd, x, y, weak)
		}
	})
	el := time.Since(start)
	for i := range y {
		if y[i] != calls*alpha {
			panic(fmt.Sprintf("y[%d] = %v, want %v", i, y[i], calls*alpha))
		}
	}
	return el, float64(rt.Flops()) / el.Seconds() / 1e9
}

func main() {
	strongT, strongG := run(false)
	weakT, weakG := run(true)
	fmt.Printf("%d calls of axpy over %d elements, blocks of %d, 8 workers\n", calls, n, block)
	fmt.Printf("  nest-depend (strong deps + taskwait): %8v  %6.2f GFlop/s\n", strongT.Round(time.Microsecond), strongG)
	fmt.Printf("  nest-weak   (weak deps + weakwait):   %8v  %6.2f GFlop/s\n", weakT.Round(time.Microsecond), weakG)
	fmt.Println("both runs validated: y == calls*alpha everywhere")
}

func min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
