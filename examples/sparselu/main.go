// SparseLU example: blocked sparse LU factorization with fill-in — the
// classic BOTS workload — written top-down with one weak panel task per
// elimination step.
//
// A symbolic phase materializes the fill-in pattern; the numeric phase then
// runs fully task-parallel: each panel declares depend(weakinout:) over its
// trailing square (regions of successive panels overlap partially, §VII),
// instantiates its lu0/fwd/bdiv/bmod kernels in parallel with the other
// panels (§VI), and hands its dependencies over to them at body exit (§V).
//
// Run with:
//
//	go run ./examples/sparselu
package main

import (
	"fmt"
	"time"

	"repro/internal/workloads"
)

func main() {
	p := workloads.SparseLUParams{B: 24, TS: 32, Density: 0.3, Seed: 2017, Compute: true}
	for _, v := range workloads.SparseLUVariants {
		start := time.Now()
		res, fills, err := workloads.RunSparseLU(workloads.Mode{Workers: 8}, v, p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s  wall %-12v  tasks %-5d  fill-in blocks %-4d  GFlop/s %.2f\n",
			v, time.Since(start).Round(time.Microsecond), res.Tasks, fills, res.GFlops())
	}
	fmt.Println("\nall three variants validated against the sequential factorization")
}
