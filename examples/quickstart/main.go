// Quickstart: the smallest useful program on the nanos runtime.
//
// It builds the paper's listing 2 scenario: a task T1 with two subtasks and
// the weakwait clause, followed by consumers T2 and T3. With weakwait, T2
// becomes ready as soon as the subtask covering its data finishes — it does
// not wait for the rest of T1's subtree.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	nanos "repro"
)

func main() {
	rt := nanos.New(nanos.Config{Workers: 4})

	// Two logical variables a and b: elements 0 and 1 of one data object.
	vars := rt.NewData("vars", 2, 8)
	a := nanos.Iv(0, 1)
	b := nanos.Iv(1, 2)

	var order []string
	done := make(chan string, 8)

	rt.Run(func(tc *nanos.TaskContext) {
		// T1: increments a and b via two subtasks. The weakwait clause lets
		// each variable's dependency release as soon as its subtask ends.
		tc.Submit(nanos.TaskSpec{
			Label:    "T1",
			WeakWait: true,
			Deps:     []nanos.Dep{nanos.DInOut(vars, a, b)},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(nanos.TaskSpec{
					Label: "T1.1",
					Deps:  []nanos.Dep{nanos.DInOut(vars, a)},
					Body:  func(*nanos.TaskContext) { done <- "T1.1" },
				})
				tc.Submit(nanos.TaskSpec{
					Label: "T1.2",
					Deps:  []nanos.Dep{nanos.DInOut(vars, b)},
					Body: func(*nanos.TaskContext) {
						time.Sleep(50 * time.Millisecond) // the slow sibling
						done <- "T1.2"
					},
				})
			},
		})
		// T2 reads a: ready right after T1.1 — while T1.2 still sleeps.
		tc.Submit(nanos.TaskSpec{
			Label: "T2",
			Deps:  []nanos.Dep{nanos.DIn(vars, a)},
			Body:  func(*nanos.TaskContext) { done <- "T2" },
		})
		// T3 reads b: has to wait for T1.2.
		tc.Submit(nanos.TaskSpec{
			Label: "T3",
			Deps:  []nanos.Dep{nanos.DIn(vars, b)},
			Body:  func(*nanos.TaskContext) { done <- "T3" },
		})
	})
	close(done)
	for l := range done {
		order = append(order, l)
	}

	fmt.Println("completion order:", order)
	fmt.Println("(T2 finishing before T1.2 is the paper's fine-grained release, §V)")
	st := rt.DepStats()
	fmt.Printf("dependency engine: %d fragments, %d links, %d hand-overs, %d releases\n",
		st.Fragments, st.Links, st.Handovers, st.Releases)
}
