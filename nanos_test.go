package nanos_test

import (
	"sync/atomic"
	"testing"

	nanos "repro"
)

// TestPublicAPIQuickstart runs the doc-comment program shape end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	rt := nanos.New(nanos.Config{Workers: 4})
	x := rt.NewData("x", 1024, 8)
	data := make([]float64, 1024)
	var sum atomic.Int64
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{
			Label: "produce",
			Deps:  []nanos.Dep{nanos.DOut(x, nanos.Iv(0, 1024))},
			Body: func(tc *nanos.TaskContext) {
				for i := range data {
					data[i] = 1
				}
			},
		})
		tc.Submit(nanos.TaskSpec{
			Label: "consume",
			Deps:  []nanos.Dep{nanos.DIn(x, nanos.Iv(0, 1024))},
			Body: func(tc *nanos.TaskContext) {
				var s float64
				for _, v := range data {
					s += v
				}
				sum.Store(int64(s))
			},
		})
	})
	if sum.Load() != 1024 {
		t.Fatalf("consumer read %d, want 1024 (dependency violated)", sum.Load())
	}
}

// TestPublicAPIWeakNesting runs the paper's listing 5 shape (axpy with weak
// outer accesses) through the public API and checks the arithmetic.
func TestPublicAPIWeakNesting(t *testing.T) {
	const n, s, calls = 1 << 12, 1 << 8, 5
	const alpha = 2.0
	rt := nanos.New(nanos.Config{Workers: 4})
	xd := rt.NewData("x", n, 8)
	yd := rt.NewData("y", n, 8)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	rt.Run(func(tc *nanos.TaskContext) {
		for c := 0; c < calls; c++ {
			tc.Submit(nanos.TaskSpec{
				Label:    "axpy",
				WeakWait: true,
				Deps: []nanos.Dep{
					nanos.DWeakIn(xd, nanos.Iv(0, n)),
					nanos.DWeakInOut(yd, nanos.Iv(0, n)),
				},
				Body: func(tc *nanos.TaskContext) {
					for start := int64(0); start < n; start += s {
						start := start
						end := start + s
						if end > n {
							end = n
						}
						tc.Submit(nanos.TaskSpec{
							Label: "axpy-block",
							Deps: []nanos.Dep{
								nanos.DIn(xd, nanos.Iv(start, end)),
								nanos.DInOut(yd, nanos.Iv(start, end)),
							},
							Body: func(*nanos.TaskContext) {
								for i := start; i < end; i++ {
									y[i] += alpha * x[i]
								}
							},
						})
					}
				},
			})
		}
	})
	for i, v := range y {
		if v != calls*alpha {
			t.Fatalf("y[%d] = %v, want %v", i, v, float64(calls*alpha))
		}
	}
	if st := rt.DepStats(); st.Handovers == 0 {
		t.Fatal("weakwait hand-overs expected")
	}
}

// TestPublicAPIHelpers covers the small constructors.
func TestPublicAPIHelpers(t *testing.T) {
	d := nanos.DataID(3)
	cases := []struct {
		dep  nanos.Dep
		typ  nanos.AccessType
		weak bool
	}{
		{nanos.DIn(d, nanos.Iv(0, 1)), nanos.In, false},
		{nanos.DOut(d, nanos.Iv(0, 1)), nanos.Out, false},
		{nanos.DInOut(d, nanos.Iv(0, 1)), nanos.InOut, false},
		{nanos.DWeakIn(d, nanos.Iv(0, 1)), nanos.In, true},
		{nanos.DWeakOut(d, nanos.Iv(0, 1)), nanos.Out, true},
		{nanos.DWeakInOut(d, nanos.Iv(0, 1)), nanos.InOut, true},
		{nanos.DRed(d, nanos.Iv(0, 1)), nanos.Red, false},
		{nanos.DWeakRed(d, nanos.Iv(0, 1)), nanos.Red, true},
	}
	for i, c := range cases {
		if c.dep.Data != d || c.dep.Type != c.typ || c.dep.Weak != c.weak {
			t.Fatalf("case %d: %+v", i, c.dep)
		}
	}
	if iv := nanos.BlockInterval(4, 8, 1, 2); iv.Lo != 6*64 || iv.Len() != 64 {
		t.Fatalf("BlockInterval = %v", iv)
	}
	if ivs := nanos.Strided(0, 1, 4, 3); len(ivs) != 3 {
		t.Fatalf("Strided = %v", ivs)
	}
	if c := nanos.DefaultL2Cache(); c.CapacityBytes() == 0 {
		t.Fatal("DefaultL2Cache empty")
	}
}

// TestPublicAPIVirtualMode exercises virtual mode through the public API.
func TestPublicAPIVirtualMode(t *testing.T) {
	rt := nanos.New(nanos.Config{Workers: 8, Virtual: true})
	d := rt.NewData("x", 4, 8)
	rt.Run(func(tc *nanos.TaskContext) {
		for i := int64(0); i < 4; i++ {
			tc.Submit(nanos.TaskSpec{Label: "t", Cost: 7,
				Deps: []nanos.Dep{nanos.DInOut(d, nanos.Iv(i, i+1))}})
		}
	})
	if rt.VirtualTime() != 7 {
		t.Fatalf("VirtualTime = %d, want 7 (independent tasks)", rt.VirtualTime())
	}
}
