package nanos_test

// Public-API tests of the task-reduction extension (the paper's future-work
// direction §X integrated with nesting and weak dependencies).

import (
	"sync/atomic"
	"testing"

	nanos "repro"
)

// TestReductionParallelSum: N reduction tasks accumulate into one scalar
// concurrently; a reader afterwards sees the complete sum.
func TestReductionParallelSum(t *testing.T) {
	const n = 64
	rt := nanos.New(nanos.Config{Workers: 8})
	d := rt.NewData("acc", 1, 8)
	var acc atomic.Int64
	var final int64
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{
			Label: "init",
			Deps:  []nanos.Dep{nanos.DOut(d, nanos.Iv(0, 1))},
			Body:  func(*nanos.TaskContext) { acc.Store(1000) },
		})
		for i := 0; i < n; i++ {
			tc.Submit(nanos.TaskSpec{
				Label: "add",
				Deps:  []nanos.Dep{nanos.DRed(d, nanos.Iv(0, 1))},
				Body:  func(*nanos.TaskContext) { acc.Add(1) },
			})
		}
		tc.Submit(nanos.TaskSpec{
			Label: "read",
			Deps:  []nanos.Dep{nanos.DIn(d, nanos.Iv(0, 1))},
			Body:  func(*nanos.TaskContext) { final = acc.Load() },
		})
	})
	if final != 1000+n {
		t.Fatalf("reader saw %d, want %d (group not isolated)", final, 1000+n)
	}
}

// TestReductionGroupRunsConcurrently: two reduction tasks rendezvous —
// which deadlocks if the engine serializes the group.
func TestReductionGroupRunsConcurrently(t *testing.T) {
	rt := nanos.New(nanos.Config{Workers: 2})
	d := rt.NewData("acc", 1, 8)
	c1 := make(chan struct{})
	c2 := make(chan struct{})
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{Label: "r1",
			Deps: []nanos.Dep{nanos.DRed(d, nanos.Iv(0, 1))},
			Body: func(*nanos.TaskContext) { close(c1); <-c2 }})
		tc.Submit(nanos.TaskSpec{Label: "r2",
			Deps: []nanos.Dep{nanos.DRed(d, nanos.Iv(0, 1))},
			Body: func(*nanos.TaskContext) { close(c2); <-c1 }})
	})
}

// TestReductionNestedWeak: reduction contributions from nested subtrees
// through weak reduction covers, overlapping across subtrees.
func TestReductionNestedWeak(t *testing.T) {
	const perTree = 16
	rt := nanos.New(nanos.Config{Workers: 4})
	d := rt.NewData("acc", 1, 8)
	var acc atomic.Int64
	var final int64
	subtree := func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{
			Label:    "branch",
			WeakWait: true,
			Deps:     []nanos.Dep{nanos.DWeakRed(d, nanos.Iv(0, 1))},
			Body: func(tc *nanos.TaskContext) {
				for i := 0; i < perTree; i++ {
					tc.Submit(nanos.TaskSpec{
						Label: "leaf-add",
						Deps:  []nanos.Dep{nanos.DRed(d, nanos.Iv(0, 1))},
						Body:  func(*nanos.TaskContext) { acc.Add(1) },
					})
				}
			},
		})
	}
	rt.Run(func(tc *nanos.TaskContext) {
		subtree(tc)
		subtree(tc)
		subtree(tc)
		tc.Submit(nanos.TaskSpec{
			Label: "read",
			Deps:  []nanos.Dep{nanos.DIn(d, nanos.Iv(0, 1))},
			Body:  func(*nanos.TaskContext) { final = acc.Load() },
		})
	})
	if final != 3*perTree {
		t.Fatalf("reader saw %d, want %d", final, 3*perTree)
	}
}

// TestReductionOrderAgainstWriter: reductions wait for a prior writer and
// a later writer waits for the group (checked via virtual-time structure).
func TestReductionOrderAgainstWriter(t *testing.T) {
	rt := nanos.New(nanos.Config{Workers: 8, Virtual: true})
	d := rt.NewData("acc", 1, 8)
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{Label: "w1", Cost: 10,
			Deps: []nanos.Dep{nanos.DInOut(d, nanos.Iv(0, 1))}})
		for i := 0; i < 6; i++ {
			tc.Submit(nanos.TaskSpec{Label: "red", Cost: 5,
				Deps: []nanos.Dep{nanos.DRed(d, nanos.Iv(0, 1))}})
		}
		tc.Submit(nanos.TaskSpec{Label: "w2", Cost: 10,
			Deps: []nanos.Dep{nanos.DInOut(d, nanos.Iv(0, 1))}})
	})
	// w1 (10) → all reductions in parallel (5) → w2 (10) = 25.
	if got := rt.VirtualTime(); got != 25 {
		t.Fatalf("makespan = %d, want 25 (10 + 5 + 10)", got)
	}
}

// BenchmarkReductionVsSerialized quantifies the extension: a reduction
// group versus the same accumulation expressed as a serializing inout
// chain (the only pre-extension formulation).
func BenchmarkReductionVsSerialized(b *testing.B) {
	b.ReportAllocs()
	const n = 256
	run := func(typ nanos.AccessType) int64 {
		rt := nanos.New(nanos.Config{Workers: 16, Virtual: true})
		d := rt.NewData("acc", 1, 8)
		rt.Run(func(tc *nanos.TaskContext) {
			for i := 0; i < n; i++ {
				tc.Submit(nanos.TaskSpec{Label: "add", Cost: 4,
					Deps: []nanos.Dep{{Data: d, Type: typ, Ivs: []nanos.Interval{nanos.Iv(0, 1)}}}})
			}
		})
		return rt.VirtualTime()
	}
	b.Run("reduction", func(b *testing.B) {
		b.ReportAllocs()
		var vt int64
		for i := 0; i < b.N; i++ {
			vt = run(nanos.Red)
		}
		b.ReportMetric(float64(vt), "virtual-time")
	})
	b.Run("inout-chain", func(b *testing.B) {
		b.ReportAllocs()
		var vt int64
		for i := 0; i < b.N; i++ {
			vt = run(nanos.InOut)
		}
		b.ReportMetric(float64(vt), "virtual-time")
	})
}
