package nanos_test

// Extended randomized stress tests: scheduler-configuration matrix, the
// release directive at random points, taskgroups inside random programs,
// failure injection, and virtual-mode determinism. These build on the
// program generator and reference of stress_test.go.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	nanos "repro"
)

// runStressCfg is runStress with a custom runtime configuration and an
// optional per-task priority source.
func runStressCfg(t *testing.T, tasks []*stressTask, cfg nanos.Config, prio func(label string) int64) {
	expect, final := stressReference(tasks)
	rt := nanos.New(cfg)
	d := rt.NewData("x", stressUniverse, 8)
	data := make([]int64, stressUniverse)
	var mu sync.Mutex
	var violations []string

	var submit func(tc *nanos.TaskContext, st *stressTask)
	submit = func(tc *nanos.TaskContext, st *stressTask) {
		var deps []nanos.Dep
		if len(st.children) > 0 {
			if st.weak {
				deps = append(deps, nanos.DWeakInOut(d, st.cover))
			} else {
				deps = append(deps, nanos.DInOut(d, st.cover))
			}
		}
		for _, iv := range st.reads {
			deps = append(deps, nanos.DIn(d, iv))
		}
		for _, iv := range st.writes {
			deps = append(deps, nanos.DInOut(d, iv))
		}
		spec := nanos.TaskSpec{
			Label:    st.label,
			WeakWait: st.weakWait,
			Deps:     deps,
			Body: func(tc *nanos.TaskContext) {
				exp := expect[st.label]
				for _, iv := range st.reads {
					for p := iv.Lo; p < iv.Hi; p++ {
						if got := data[p]; got != exp[p] {
							mu.Lock()
							violations = append(violations,
								fmt.Sprintf("%s read [%d]=%d want %d", st.label, p, got, exp[p]))
							mu.Unlock()
						}
					}
				}
				for _, iv := range st.writes {
					for p := iv.Lo; p < iv.Hi; p++ {
						data[p] = int64(st.seq)
					}
				}
				for _, c := range st.children {
					submit(tc, c)
				}
				if st.weakWait && len(st.children) > 0 {
					// All future work of this task is created; the early
					// release must be equivalent to the weakwait at body
					// exit that would follow anyway.
					tc.Release(nanos.DWeakInOut(d, st.cover))
				}
			},
		}
		if prio != nil {
			spec.Priority = prio(st.label)
		}
		tc.Submit(spec)
	}

	rt.Run(func(tc *nanos.TaskContext) {
		for _, st := range tasks {
			submit(tc, st)
		}
	})

	if len(violations) > 0 {
		t.Fatalf("serialization violations (cfg %+v): %v", cfg, violations[:min(4, len(violations))])
	}
	for p := range data {
		if data[p] != final[p] {
			t.Fatalf("final state [%d] = %d, want %d", p, data[p], final[p])
		}
	}
}

// TestStressSchedulerMatrix runs random programs (with the early-release
// directive active in every weakwait task) across the scheduler
// configurations: FIFO, LIFO, Priority with random priorities, and work
// stealing, with and without hand-off.
func TestStressSchedulerMatrix(t *testing.T) {
	type cfgCase struct {
		name string
		cfg  nanos.Config
		prio bool
	}
	cases := []cfgCase{
		{"fifo", nanos.Config{Workers: 4}, false},
		{"lifo", nanos.Config{Workers: 4, Policy: nanos.LIFO}, false},
		{"priority", nanos.Config{Workers: 4, Policy: nanos.Priority}, true},
		{"stealing", nanos.Config{Workers: 4, Stealing: true}, false},
		{"fifo-nohandoff", nanos.Config{Workers: 4, NoHandoff: true}, false},
		{"stealing-nohandoff", nanos.Config{Workers: 4, Stealing: true, NoHandoff: true}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(5000 + seed))
				prog := buildStressProgram(rng, 2)
				var prio func(string) int64
				if c.prio {
					// Submit runs concurrently, so derive the priority from
					// the label rather than sharing an rng.
					prio = func(label string) int64 {
						var h int64
						for _, ch := range label {
							h = h*31 + int64(ch)
						}
						return (h + seed) % 5
					}
				}
				cfg := c.cfg
				cfg.Debug = true
				runStressCfg(t, prog, cfg, prio)
				if t.Failed() {
					t.Fatalf("seed %d failed", seed)
				}
			}
		})
	}
}

// TestStressTaskgroupSubtrees wraps each top-level task's child submissions
// in a taskgroup and asserts the whole subtree completed when the group
// returns.
func TestStressTaskgroupSubtrees(t *testing.T) {
	countTasks := func(st *stressTask) int64 {
		var n int64 = 1
		var walk func(*stressTask)
		walk = func(s *stressTask) {
			for _, c := range s.children {
				n++
				walk(c)
			}
		}
		walk(st)
		return n
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(9000 + seed))
		prog := buildStressProgram(rng, 2)
		rt := nanos.New(nanos.Config{Workers: 4})
		d := rt.NewData("x", stressUniverse, 8)
		var executed atomic.Int64

		var submit func(tc *nanos.TaskContext, st *stressTask)
		submit = func(tc *nanos.TaskContext, st *stressTask) {
			var deps []nanos.Dep
			if len(st.children) > 0 {
				deps = append(deps, nanos.DWeakInOut(d, st.cover))
			}
			for _, iv := range st.writes {
				deps = append(deps, nanos.DInOut(d, iv))
			}
			tc.Submit(nanos.TaskSpec{
				Label: st.label, WeakWait: st.weakWait, Deps: deps,
				Body: func(tc *nanos.TaskContext) {
					executed.Add(1)
					for _, c := range st.children {
						submit(tc, c)
					}
				},
			})
		}

		rt.Run(func(tc *nanos.TaskContext) {
			for _, st := range prog {
				st := st
				want := countTasks(st)
				before := executed.Load()
				tc.Taskgroup(func() { submit(tc, st) })
				if got := executed.Load() - before; got < want {
					t.Fatalf("seed %d: taskgroup returned after %d of %d subtree tasks", seed, got, want)
				}
			}
		})
	}
}

// TestStressFailureInjection panics a random task mid-program and checks
// the runtime returns the failure, skips later bodies, and still drains.
func TestStressFailureInjection(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		prog := buildStressProgram(rng, 2)
		// Count the tasks, pick a victim by pre-order index.
		expect, _ := stressReference(prog)
		victim := 1 + rng.Intn(len(expect))

		rt := nanos.New(nanos.Config{Workers: 4, Debug: true})
		d := rt.NewData("x", stressUniverse, 8)
		var submit func(tc *nanos.TaskContext, st *stressTask)
		submit = func(tc *nanos.TaskContext, st *stressTask) {
			var deps []nanos.Dep
			if len(st.children) > 0 {
				deps = append(deps, nanos.DWeakInOut(d, st.cover))
			}
			for _, iv := range st.writes {
				deps = append(deps, nanos.DInOut(d, iv))
			}
			tc.Submit(nanos.TaskSpec{
				Label: st.label, WeakWait: st.weakWait, Deps: deps,
				Body: func(tc *nanos.TaskContext) {
					if st.seq == victim {
						panic(fmt.Sprintf("injected failure in %s", st.label))
					}
					for _, c := range st.children {
						submit(tc, c)
					}
				},
			})
		}
		err := rt.RunChecked(func(tc *nanos.TaskContext) {
			for _, st := range prog {
				submit(tc, st)
			}
		})
		var te *nanos.TaskError
		if !errors.As(err, &te) {
			t.Fatalf("seed %d: err = %v, want TaskError", seed, err)
		}
	}
}

// TestStressTaskwaitContinuationMatrix combines the taskwait strategies
// with every sharded subsystem at once — stealing ready pool, sharded
// throttle window, pooled memory, and replay graph regions (one
// replay-eligible region with owner-level waits, one made ineligible by
// member-task waits over nested submissions) — under Debug, whose
// end-of-run checks assert zero continuation nodes outstanding at drain.
// Run with -race this is the concurrency-safety net for the continuation
// handoff across all layers.
func TestStressTaskwaitContinuationMatrix(t *testing.T) {
	iters, inner := 4, 20
	if testing.Short() {
		iters, inner = 2, 8
	}
	for _, impl := range []nanos.TaskwaitKind{nanos.TaskwaitParking, nanos.TaskwaitContinuation} {
		impl := impl
		t.Run(fmt.Sprintf("impl=%v", impl), func(t *testing.T) {
			rt := nanos.New(nanos.Config{
				Workers:           4,
				Stealing:          true,
				ThrottleOpenTasks: 6,
				TaskwaitImpl:      impl,
				Debug:             true,
			})
			d := rt.NewData("x", stressUniverse, 8)
			var sum atomic.Int64
			err := rt.RunChecked(func(tc *nanos.TaskContext) {
				for it := 0; it < iters; it++ {
					// Replay-eligible region: owner-level waits between
					// submissions; iterations 2+ run from the recording.
					tc.Graph("tw-owner", func(tc *nanos.TaskContext) {
						for b := 0; b < 4; b++ {
							lo, hi := int64(b*16), int64(b*16+16)
							tc.Submit(nanos.TaskSpec{
								Label: "A",
								Deps:  []nanos.Dep{nanos.DInOut(d, nanos.Iv(lo, hi))},
								Body:  func(*nanos.TaskContext) { sum.Add(1) },
							})
							if b == 1 {
								tc.Taskwait()
							}
						}
						tc.Taskwait()
					})
					// Ineligible region: member tasks submit nested children
					// and block on them, so every iteration runs live.
					tc.Graph("tw-member", func(tc *nanos.TaskContext) {
						for m := 0; m < 3; m++ {
							tc.Submit(nanos.TaskSpec{Label: "M", Body: func(tc *nanos.TaskContext) {
								var local atomic.Int64
								for c := 0; c < inner; c++ {
									tc.Submit(nanos.TaskSpec{Label: "inner", Body: func(*nanos.TaskContext) {
										local.Add(1)
										sum.Add(1)
									}})
								}
								tc.Taskwait()
								if got := local.Load(); got != int64(inner) {
									t.Errorf("member wait returned after %d of %d nested children", got, inner)
								}
							}})
						}
					})
					// Loose wait-heavy churn outside any region, throttled.
					for p := 0; p < 6; p++ {
						lo := int64((p % 4) * 16)
						tc.Submit(nanos.TaskSpec{Label: "P", Body: func(tc *nanos.TaskContext) {
							for c := 0; c < 4; c++ {
								tc.Submit(nanos.TaskSpec{
									Label: "leaf",
									Deps:  []nanos.Dep{nanos.DInOut(d, nanos.Iv(lo, lo+16))},
									Body:  func(*nanos.TaskContext) { sum.Add(1) },
								})
								tc.Taskwait()
							}
						}})
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			want := int64(iters * (4 + 3*inner + 6*4))
			if got := sum.Load(); got != want {
				t.Fatalf("ran %d bodies, want %d", got, want)
			}
			if n := rt.ContPoolStats().Outstanding(); n != 0 {
				t.Fatalf("%d continuation nodes outstanding after drain", n)
			}
			st := rt.TaskwaitStats()
			switch impl {
			case nanos.TaskwaitContinuation:
				if st.Parks != 0 {
					t.Errorf("continuation: %d parks, want zero (stats %+v)", st.Parks, st)
				}
				if st.Handoffs == 0 {
					t.Errorf("continuation: no handoffs on a wait-heavy workload (stats %+v)", st)
				}
			case nanos.TaskwaitParking:
				if st.Handoffs != 0 || st.StealResumes != 0 {
					t.Errorf("parking: stats %+v, want zero handoffs and steal-resumes", st)
				}
				if st.Parks == 0 {
					t.Errorf("parking: no parks on a wait-heavy workload (stats %+v)", st)
				}
			}
			rst := rt.ReplayStats()
			if rst.Records == 0 {
				t.Errorf("no region recorded: %+v", rst)
			}
			if iters > 1 && rst.Replays == 0 {
				t.Errorf("owner-wait region never replayed: %+v", rst)
			}
		})
	}
}

// TestStressVirtualDeterminism: identical virtual-mode runs produce
// identical makespans and task counts, across policies.
func TestStressVirtualDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := buildStressProgram(rng, 2)
		run := func() (int64, int64) {
			rt := nanos.New(nanos.Config{Workers: 1 + int(seed%7), Virtual: true})
			d := rt.NewData("x", stressUniverse, 8)
			var submit func(tc *nanos.TaskContext, st *stressTask)
			submit = func(tc *nanos.TaskContext, st *stressTask) {
				var deps []nanos.Dep
				if len(st.children) > 0 {
					deps = append(deps, nanos.DWeakInOut(d, st.cover))
				}
				for _, iv := range st.reads {
					deps = append(deps, nanos.DIn(d, iv))
				}
				for _, iv := range st.writes {
					deps = append(deps, nanos.DInOut(d, iv))
				}
				tc.Submit(nanos.TaskSpec{
					Label: st.label, WeakWait: st.weakWait, Deps: deps,
					Cost: 1 + int64(st.seq%13),
					Body: func(tc *nanos.TaskContext) {
						for _, c := range st.children {
							submit(tc, c)
						}
					},
				})
			}
			rt.Run(func(tc *nanos.TaskContext) {
				for _, st := range prog {
					submit(tc, st)
				}
			})
			return rt.VirtualTime(), rt.TaskCount()
		}
		t1, c1 := run()
		t2, c2 := run()
		return t1 == t2 && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(55))}); err != nil {
		t.Fatal(err)
	}
}
