// Package nanos is a Go reproduction of the tasking runtime described in
// "Improving the Integration of Task Nesting and Dependencies in OpenMP"
// (Pérez, Beltran, Labarta, Ayguadé; IPDPS 2017) — the runtime the paper
// calls Nanos6.
//
// The package provides an OpenMP-4.x-style tasking model extended with the
// paper's three contributions:
//
//   - the wait-style detached completion (§IV): a task's body returns
//     immediately and the task completes when all of its descendants do —
//     no in-body taskwait required (though Taskwait is available);
//   - the weakwait clause and release directive (§V): fine-grained release
//     of dependencies across nesting levels — at body exit (or earlier, via
//     Release) each dependency region not covered by a live subtask is
//     released, and covered regions are handed over to release exactly when
//     the covering subtask finishes;
//   - weak dependency types (§VI): depend entries that link the dependency
//     domains of nesting levels without deferring the task itself, so outer
//     tasks instantiate their subtasks in parallel and the subtasks inherit
//     the incoming dependency edges.
//
// Dependencies are declared over element intervals of registered data
// objects and may overlap partially (§VII); the engine fragments accesses
// as needed.
//
// Two dependency-engine implementations enforce these semantics behind the
// deps.Engine interface, selectable via Config.DepEngine: EngineGlobal
// serializes everything behind one mutex (the reference), while
// EngineSharded partitions all dependency state per data object — each
// DataID gets its own lock and cascade queue, so depend clauses over
// disjoint data register and release with no common lock, and a task's
// cross-object readiness countdown is a bare atomic. EngineAuto (default)
// picks sharded in both modes. Differential property tests drive both
// engines in lockstep over random task programs to keep them observably
// equivalent.
//
// The scheduler admission path is sharded the same way: real mode defaults
// to a work-stealing ready pool with one lock-free deque per worker and
// lock-free token accounting (Config.ReadyPool = PoolAuto), so submitting,
// finishing, and yielding tasks on different workers never serialize on a
// common lock. The single-lock central queue (FIFO/LIFO/Priority) and a
// sharded central variant remain selectable for ablations.
//
// With the locks sharded away, the remaining steady-state cost is
// allocator and GC traffic, and real mode therefore defaults to pooled
// task-lifecycle memory (Config.MemPool = MemAuto): tasks, dependency
// nodes, access fragments, and interval-map cells recycle through typed
// free lists with generation-counted handles, so a submit→complete cycle
// allocates nothing once warm. MemReference restores the allocate-always
// baseline for A/B comparisons.
//
// Nested synchronization points are wait-free by default (Config.
// TaskwaitImpl = TaskwaitAuto): a Taskwait that finds incomplete children
// yields its worker token into other ready work, and the last completing
// child submits the waiting task back into the ready pools as a pooled
// continuation — the worker that pulls it hands its token straight to the
// parked goroutine, so the token protocol never idles a worker on a sync
// point. TaskwaitParking restores the classic park-on-channel reference;
// Runtime.TaskwaitStats reports parks, handoffs, and steal-resumes.
//
// A minimal program:
//
//	rt := nanos.New(nanos.Config{Workers: 4})
//	x := rt.NewData("x", 1024, 8)
//	rt.Run(func(tc *nanos.TaskContext) {
//	    tc.Submit(nanos.TaskSpec{
//	        Label: "produce",
//	        Deps:  []nanos.Dep{nanos.DOut(x, nanos.Iv(0, 1024))},
//	        Body:  func(tc *nanos.TaskContext) { /* write x */ },
//	    })
//	    tc.Submit(nanos.TaskSpec{
//	        Label: "consume",
//	        Deps:  []nanos.Dep{nanos.DIn(x, nanos.Iv(0, 1024))},
//	        Body:  func(tc *nanos.TaskContext) { /* read x */ },
//	    })
//	})
package nanos

import (
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/mempool"
	"repro/internal/regions"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/throttle"
)

// Core vocabulary, re-exported so user code only imports this package.
type (
	// Config configures a Runtime; see the field docs in internal/core.
	Config = core.Config
	// Runtime executes one task program (single Run per Runtime).
	Runtime = core.Runtime
	// TaskContext is passed to task bodies for submitting subtasks,
	// waiting, and releasing dependencies.
	TaskContext = core.TaskContext
	// TaskSpec describes a task to submit.
	TaskSpec = core.TaskSpec
	// Dep is one depend-clause entry.
	Dep = core.Dep
	// DataID identifies a registered data object.
	DataID = core.DataID
	// Interval is a half-open element interval [Lo, Hi).
	Interval = core.Interval
	// AccessType is In, Out, or InOut.
	AccessType = core.AccessType
	// CacheConfig configures the per-worker cache simulation.
	CacheConfig = cachesim.Config
	// Policy is the ready-queue discipline.
	Policy = sched.Policy
	// DepStats exposes dependency-engine activity counters.
	DepStats = deps.Stats
	// TaskError reports a panic recovered from a task body; returned by
	// Runtime.RunChecked (and re-panicked by Runtime.Run). Either way the
	// runtime drains to quiescence first: remaining bodies are skipped,
	// credits refund, pooled objects recycle, and poisoned graph regions
	// invalidate their recordings.
	TaskError = core.TaskError
	// StallReport is one stall-watchdog diagnosis (Config.Watchdog arms
	// the watchdog, Config.OnStall receives reports as they fire,
	// Runtime.StallReports returns those collected during the run).
	StallReport = core.StallReport
	// WorkerState is one worker's heartbeat row in a StallReport.
	WorkerState = core.WorkerState
	// Violation is one finding of the Config.Verify lint checks.
	Violation = core.Violation
	// ViolationKind classifies a Violation.
	ViolationKind = core.ViolationKind
	// Section2D describes a rectangular section of a row-major 2-D array.
	Section2D = regions.Section2D
	// EngineKind selects the dependency-engine implementation
	// (Config.DepEngine).
	EngineKind = deps.EngineKind
	// PoolKind selects the ready-pool implementation (Config.ReadyPool).
	PoolKind = sched.PoolKind
	// Topology arranges the stealing pool's worker shards into a locality
	// tree (domain → core group → worker) for nearest-first steal victim
	// selection (Config.Topology). The zero value derives a synthetic tree
	// from the worker count; sched.TopologyFlat selects the flat reference
	// order.
	Topology = sched.Topology
	// PoolStats exposes ready-pool steal counters, including the
	// steal-distance histogram over the topology tree.
	PoolStats = sched.PoolStats
	// ThrottleKind selects the throttle-window implementation
	// (Config.ThrottleImpl).
	ThrottleKind = throttle.Kind
	// ThrottleStats exposes throttle-window activity counters
	// (Runtime.ThrottleStats).
	ThrottleStats = throttle.Stats
	// MemPoolKind selects the task-lifecycle memory management
	// (Config.MemPool).
	MemPoolKind = mempool.Kind
	// MemStats exposes the dependency engine's memory-pool counters
	// (Runtime.MemStats).
	MemStats = deps.MemStats
	// ReplayKind selects the record-and-replay taskgraph cache mode
	// (Config.Replay).
	ReplayKind = replay.Kind
	// ReplayStats exposes the record-and-replay cache counters
	// (Runtime.ReplayStats): recordings, replays, invalidations, live
	// fallbacks.
	ReplayStats = replay.Stats
	// TaskwaitKind selects the Taskwait blocking strategy
	// (Config.TaskwaitImpl).
	TaskwaitKind = core.TaskwaitKind
	// TaskwaitStats exposes the Taskwait blocking counters
	// (Runtime.TaskwaitStats): parks (parking strategy), continuation
	// handoffs, and steal-resumes.
	TaskwaitStats = core.TaskwaitStats
)

// Access types for Dep.Type.
const (
	In    = core.In
	Out   = core.Out
	InOut = core.InOut
	// Red is a task-reduction access (an extension beyond the paper,
	// following its future-work direction §X): reduction tasks over the
	// same region execute concurrently — their bodies must combine
	// contributions atomically — while readers and writers order against
	// the whole group, across nesting levels.
	Red = core.Red
)

// Dependency-engine kinds for Config.DepEngine.
const (
	// EngineAuto picks the sharded engine in both real and virtual mode
	// (its ready ordering reproduces the recorded virtual golden
	// makespans).
	EngineAuto = deps.EngineAuto
	// EngineGlobal is the single-mutex reference engine.
	EngineGlobal = deps.EngineGlobal
	// EngineSharded partitions dependency state per data object: depend
	// clauses over disjoint data register, fragment, and release
	// concurrently.
	EngineSharded = deps.EngineSharded
)

// Ready-queue policies for Config.Policy.
const (
	FIFO = sched.FIFO
	LIFO = sched.LIFO
	// Priority dispatches the ready task with the highest TaskSpec.Priority
	// first (FIFO among equals) — the OpenMP 4.5 priority clause.
	Priority = sched.Priority
)

// Ready-pool kinds for Config.ReadyPool.
const (
	// PoolAuto picks the sharded work-stealing pool in real mode (the
	// central queue when Policy is LIFO or Priority, which are global
	// orders); virtual mode runs its own deterministic event list.
	PoolAuto = sched.PoolAuto
	// PoolCentral is the single-lock central queue (FIFO/LIFO/Priority).
	PoolCentral = sched.PoolCentral
	// PoolShardedCentral is the sharded central queue: per-worker ingress
	// queues with FIFO work-pulling and no pool-wide lock.
	PoolShardedCentral = sched.PoolShardedCentral
	// PoolStealing is the sharded work-stealing pool: per-worker lock-free
	// deques, LIFO self-pop, CAS-based FIFO stealing, lock-free token
	// accounting.
	PoolStealing = sched.PoolStealing
	// PoolLockedStealing is the single-lock work-stealing reference
	// implementation (differential testing and contention A/Bs).
	PoolLockedStealing = sched.PoolLockedStealing
)

// TopologyFlat selects the flat steal victim order for Config.Topology —
// the pre-topology placement, kept as the differential reference.
var TopologyFlat = sched.TopologyFlat

// Throttle-window kinds for Config.ThrottleImpl (meaningful only with
// Config.ThrottleOpenTasks > 0).
const (
	// ThrottleAuto picks the sharded token-bucket window in real mode
	// (virtual mode never blocks submitters and builds no window).
	ThrottleAuto = throttle.KindAuto
	// ThrottleLocked is the single mutex+cond reference window.
	ThrottleLocked = throttle.KindLocked
	// ThrottleSharded is the sharded token-bucket window: a global atomic
	// credit balance, per-worker credit caches, and per-shard wait lists.
	ThrottleSharded = throttle.KindSharded
)

// Memory-management modes for Config.MemPool.
const (
	// MemAuto picks the pooled mode in real mode (reference in virtual
	// mode): tasks, dependency nodes, fragments, and interval-map cells
	// recycle through typed free lists instead of being reallocated every
	// submit→complete cycle.
	MemAuto = mempool.KindAuto
	// MemReference is the allocate-always baseline (the differential
	// reference for the pooled mode).
	MemReference = mempool.KindReference
	// MemPooled recycles task-lifecycle objects through internal/mempool
	// free lists; see docs/ARCHITECTURE.md for the ownership rules.
	MemPooled = mempool.KindPooled
)

// Record-and-replay modes for Config.Replay. The cache engages through
// TaskContext.Graph: the first execution of a named graph region records
// the submitted graph, and later executions with an identical dependency
// shape bypass the dependency engine, driving frozen per-task predecessor
// countdowns straight into the ready pools. Replay is transparent: shape
// changes invalidate and fall back to the live engine mid-region, and
// unfinished external producers of region inputs force a live execution.
const (
	// ReplayAuto picks on in real mode, off in virtual mode.
	ReplayAuto = replay.KindAuto
	// ReplayOff disables the cache (Graph regions keep their barrier).
	ReplayOff = replay.KindOff
	// ReplayOn enables the cache in real mode.
	ReplayOn = replay.KindOn
)

// Taskwait strategies for Config.TaskwaitImpl. Both enforce the same
// semantics (the differential tests in internal/core prove it); selecting
// one explicitly is for ablations and A/B comparisons.
const (
	// TaskwaitAuto picks the continuation handoff in real mode (virtual
	// mode has no Taskwait).
	TaskwaitAuto = core.TaskwaitAuto
	// TaskwaitParking is the classic reference: a blocked taskwait parks
	// its goroutine and re-acquires a worker token through the scheduler's
	// waiter list when the last child completes.
	TaskwaitParking = core.TaskwaitParking
	// TaskwaitContinuation is the wait-free strategy: a blocked taskwait's
	// resume is submitted into the sharded ready pools by the last
	// completing child as a pooled continuation, and the worker that pulls
	// it hands its token straight to the parked goroutine — the token
	// protocol never parks a worker on a nested sync point.
	TaskwaitContinuation = core.TaskwaitContinuation
)

// Verification finding kinds.
const (
	// VTouch is a Touch assertion not covered by the task's strong entries.
	VTouch = core.VTouch
	// VChildCoverage is a child depend entry not covered by the parent's.
	VChildCoverage = core.VChildCoverage
)

// New creates a runtime.
func New(cfg Config) *Runtime { return core.New(cfg) }

// Iv constructs the half-open interval [lo, hi).
func Iv(lo, hi int64) Interval { return regions.Iv(lo, hi) }

// DefaultL2Cache approximates one ThunderX core's share of L2 (§VIII).
func DefaultL2Cache() CacheConfig { return cachesim.DefaultL2() }

// DefaultSharedL2Cache is the full ThunderX 16 MiB shared L2, for use with
// Config.SharedCache.
func DefaultSharedL2Cache() CacheConfig { return cachesim.DefaultSharedL2() }

// DIn builds a strong read dependency: depend(in: ...).
func DIn(data DataID, ivs ...Interval) Dep {
	return Dep{Data: data, Type: In, Ivs: ivs}
}

// DOut builds a strong overwrite dependency: depend(out: ...).
func DOut(data DataID, ivs ...Interval) Dep {
	return Dep{Data: data, Type: Out, Ivs: ivs}
}

// DInOut builds a strong read-write dependency: depend(inout: ...).
func DInOut(data DataID, ivs ...Interval) Dep {
	return Dep{Data: data, Type: InOut, Ivs: ivs}
}

// DWeakIn builds a weak read dependency: depend(weakin: ...) (§VI).
func DWeakIn(data DataID, ivs ...Interval) Dep {
	return Dep{Data: data, Type: In, Weak: true, Ivs: ivs}
}

// DWeakOut builds a weak overwrite dependency: depend(weakout: ...) (§VI).
func DWeakOut(data DataID, ivs ...Interval) Dep {
	return Dep{Data: data, Type: Out, Weak: true, Ivs: ivs}
}

// DWeakInOut builds a weak read-write dependency: depend(weakinout: ...)
// (§VI).
func DWeakInOut(data DataID, ivs ...Interval) Dep {
	return Dep{Data: data, Type: InOut, Weak: true, Ivs: ivs}
}

// DRed builds a task-reduction dependency: tasks in the same reduction
// group run concurrently; readers and writers order against the group.
func DRed(data DataID, ivs ...Interval) Dep {
	return Dep{Data: data, Type: Red, Ivs: ivs}
}

// DWeakRed builds a weak reduction dependency: a linking point that lets a
// subtree contribute to an enclosing reduction group without deferring the
// task itself.
func DWeakRed(data DataID, ivs ...Interval) Dep {
	return Dep{Data: data, Type: Red, Weak: true, Ivs: ivs}
}

// BlockInterval returns the flat interval of tile (i, j) in a block-array
// layout [blocksPerSide][blocksPerSide][ts][ts] with contiguous tiles (the
// Gauss-Seidel layout of the paper's listing 6).
func BlockInterval(blocksPerSide, ts, i, j int64) Interval {
	return regions.BlockInterval(blocksPerSide, ts, i, j)
}

// Strided returns the intervals of a strided section: count runs of runLen
// elements every stride, starting at start (the prefix-sum depend shapes of
// listing 7).
func Strided(start, runLen, stride, count int64) []Interval {
	return regions.Strided(start, runLen, stride, count)
}
